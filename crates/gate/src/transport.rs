//! Transports: in-process loopback and TCP.
//!
//! The loopback transport runs the full wire path — every frame is
//! encoded to bytes and decoded back on both legs — without sockets, so
//! tests and benchmarks exercise exactly the bytes a TCP peer would see
//! while staying deterministic and sandbox-friendly. The TCP transport
//! serves the same [`GateService`] behind a mutex, one reader thread per
//! connection with a hard cap.

use std::io::Write;
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sybil_sim::Time;

use crate::service::{GateService, Response};
use crate::wire::{read_frame, Frame};

/// An in-process connection to a gate, speaking real wire bytes.
pub struct Loopback {
    service: GateService,
}

impl Loopback {
    /// Wraps a service in a loopback transport.
    pub fn new(service: GateService) -> Self {
        Loopback { service }
    }

    /// Opens a connection at `now`; returns the connection id and the
    /// decoded hello frame, after pushing it through encode/decode as a
    /// socket write would.
    pub fn connect(&mut self, now: Time) -> (u64, Frame) {
        let (conn, hello) = self.service.connect(now);
        let bytes = hello.encode();
        let (decoded, _) = Frame::decode(&bytes).expect("hello frames always round-trip");
        (conn, decoded)
    }

    /// Sends one client frame and returns the server's reply, or `None`
    /// when the server silently drops. Both directions cross the wire
    /// encoding.
    pub fn request(&mut self, conn: u64, frame: &Frame, now: Time) -> Option<Frame> {
        let bytes = frame.encode();
        let (decoded, _) = Frame::decode(&bytes).expect("well-formed frames round-trip");
        match self.service.handle(conn, &decoded, now) {
            Response::Drop => None,
            Response::Reply(reply) => {
                let bytes = reply.encode();
                let (decoded, _) = Frame::decode(&bytes).expect("replies round-trip");
                Some(decoded)
            }
        }
    }

    /// The wrapped service (counters, decision log, fingerprint).
    pub fn service(&self) -> &GateService {
        &self.service
    }

    /// Consumes the transport, returning the service.
    pub fn into_service(self) -> GateService {
        self.service
    }
}

/// Locks a shared service, surviving a panic in another handler: the
/// gate's state is append-only counters and maps, safe to keep serving.
fn lock(service: &Mutex<GateService>) -> std::sync::MutexGuard<'_, GateService> {
    service.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Serves a gate over TCP until the listener fails. Each accepted
/// connection gets the hello immediately, then a read loop; at most
/// `max_conns` handler threads run at once — excess connections are
/// handled inline on the accept thread, a crude but effective
/// backpressure. Timestamps are seconds since serve start.
pub fn serve(
    listener: TcpListener,
    service: Arc<Mutex<GateService>>,
    max_conns: usize,
) -> std::io::Result<()> {
    let start = Instant::now();
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        let stream = stream?;
        let service = Arc::clone(&service);
        let slot = Arc::clone(&active);
        let handler = move || {
            let _ = handle_conn(stream, &service, start);
            slot.fetch_sub(1, Ordering::Relaxed);
        };
        if active.fetch_add(1, Ordering::Relaxed) < max_conns.max(1) {
            std::thread::spawn(handler);
        } else {
            handler();
        }
    }
    Ok(())
}

/// One connection's lifecycle: hello, then frames until drop or EOF.
fn handle_conn(
    mut stream: std::net::TcpStream,
    service: &Mutex<GateService>,
    start: Instant,
) -> std::io::Result<()> {
    let now = || Time(start.elapsed().as_secs_f64());
    let (conn, hello) = lock(service).connect(now());
    stream.write_all(&hello.encode())?;
    while let Some(frame) = read_frame(&mut stream)? {
        match lock(service).handle(conn, &frame, now()) {
            Response::Reply(reply) => stream.write_all(&reply.encode())?,
            Response::Drop => break, // silent: close without a byte
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memhard::{mine, MemHardParams};
    use crate::service::GateConfig;
    use sybil_crypto::{Challenge, Solver};

    fn small_cfg() -> GateConfig {
        GateConfig {
            difficulty_floor: 2,
            mine_bits: 1,
            mem: MemHardParams { blocks: 4, passes: 1 },
            ..GateConfig::default()
        }
    }

    /// Drives one full two-phase admission through a transport-agnostic
    /// request function; shared by the loopback test here and the TCP
    /// smoke test in `tests/loopback.rs`.
    pub(crate) fn admit_via(
        hello: &Frame,
        mut request: impl FnMut(&Frame) -> Option<Frame>,
        client_tag: u64,
    ) -> Option<u64> {
        let &Frame::Hello { difficulty, nonce, mine_bits, mem_blocks, mem_passes, .. } = hello
        else {
            return None;
        };
        let challenge = Challenge::new(&nonce, &client_tag.to_be_bytes(), difficulty);
        let solution = Solver::new().solve(&challenge).nonce;
        let reply = request(&Frame::Join { client_tag, solution })?;
        let Frame::Granted { identity, token } = reply else { return None };
        let mem = MemHardParams { blocks: mem_blocks, passes: mem_passes };
        let mined = mine(&token, mine_bits, &mem);
        let reply = request(&Frame::MineSubmit { identity, token, salt: mined.salt })?;
        matches!(reply, Frame::Admitted { identity: i } if i == identity).then_some(identity)
    }

    #[test]
    fn loopback_full_admission_crosses_the_wire() {
        let mut lb = Loopback::new(GateService::new(small_cfg()));
        let (conn, hello) = lb.connect(Time(1.0));
        let identity = admit_via(&hello, |f| lb.request(conn, f, Time(1.0)), 7);
        // Note: after the Join the connection state is consumed, but the
        // MineSubmit carries its own credentials so the same conn id works.
        assert_eq!(identity, Some(0));
        let c = lb.service().counters();
        assert_eq!((c.granted, c.admitted), (1, 1));
    }

    #[test]
    fn loopback_drop_is_none() {
        // A high floor so a garbage solution cannot fluke past the
        // verifier (at difficulty d the fluke probability is 1/d).
        let cfg = GateConfig { difficulty_floor: 1 << 30, ..small_cfg() };
        let mut lb = Loopback::new(GateService::new(cfg));
        let (conn, _) = lb.connect(Time(1.0));
        let reply = lb.request(conn, &Frame::Join { client_tag: 1, solution: u64::MAX }, Time(1.0));
        assert_eq!(reply, None);
        assert_eq!(lb.service().counters().rejected_pow, 1);
    }
}
