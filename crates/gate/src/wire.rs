//! The length-prefixed binary wire protocol of the admission gate.
//!
//! Every message is a *frame*: a little-endian `u32` payload length
//! followed by the payload, whose first byte is the frame type tag. All
//! payloads are fixed-size per type, so a malformed frame is detectable
//! before any allocation: the length prefix is checked against
//! [`MAX_FRAME_LEN`] (an oversized prefix can never make the reader
//! reserve memory) and against the exact payload size its tag demands.
//!
//! ```text
//! offset  size  field
//! 0       4     payload length (u32 LE), 1 ..= MAX_FRAME_LEN
//! 4       1     type tag
//! 5       …     fixed-size body (see each [`Frame`] variant)
//! ```
//!
//! Integers inside payloads are little-endian. Decoding is total: any
//! byte sequence either decodes to exactly one [`Frame`] or yields a
//! [`WireError`] naming what went wrong, and `decode(encode(f)) == f`
//! for every frame (pinned by the round-trip tests).

use std::io::Read;

/// Protocol version, carried in every [`Frame::Hello`].
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on payload length. The largest real payload
/// ([`Frame::MineSubmit`], 49 bytes) is well under this; anything larger
/// in a length prefix is an attack or corruption and is rejected before
/// any buffer is sized from it.
pub const MAX_FRAME_LEN: u32 = 64;

/// One protocol message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Server → client, sent once per connection before anything else:
    /// the join difficulty quote and the identity-mining parameters.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u32,
        /// PoW hardness the next [`Frame::Join`] on this connection must
        /// meet (the adaptive difficulty schedule; see the crate README).
        difficulty: u64,
        /// Fresh challenge nonce for this connection; solutions bind to
        /// it, so they cannot be precomputed or replayed across
        /// connections.
        nonce: [u8; 16],
        /// Trailing zero bits the memory-hard mining digest must have
        /// before the identity is fully admitted.
        mine_bits: u8,
        /// Memory-hard fill block count (32 bytes each).
        mem_blocks: u32,
        /// Memory-hard mix passes.
        mem_passes: u32,
    },
    /// Client → server: request to join, carrying the client's tag (its
    /// self-chosen identity handle) and a solution to the hello PoW.
    Join {
        /// Client-chosen 64-bit handle, bound into the PoW challenge.
        client_tag: u64,
        /// Solution nonce for the hello challenge.
        solution: u64,
    },
    /// Server → client: the join PoW verified; an identity is issued
    /// provisionally (phase one of two).
    Granted {
        /// The issued identity index.
        identity: u64,
        /// HMAC credential over (identity, client tag); required by every
        /// later frame about this identity, and the material the
        /// memory-hard mining hashes over.
        token: [u8; 32],
    },
    /// Client → server: a memory-hard mining solution for a provisional
    /// identity (phase two; completes admission).
    MineSubmit {
        /// The provisional identity.
        identity: u64,
        /// The credential from [`Frame::Granted`].
        token: [u8; 32],
        /// Mined salt whose fill-and-mix digest meets the difficulty.
        salt: u64,
    },
    /// Server → client: the mining solution verified; the identity is
    /// fully admitted.
    Admitted {
        /// The admitted identity.
        identity: u64,
    },
    /// Client → server: an admitted identity departs voluntarily.
    Depart {
        /// The departing identity.
        identity: u64,
        /// Its credential.
        token: [u8; 32],
    },
    /// Server → client: the departure was recorded.
    DepartAck {
        /// The departed identity.
        identity: u64,
    },
}

/// Why a byte sequence failed to decode as a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the length prefix (or the prefix itself) needs.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is zero).
    Oversized(u32),
    /// Unknown frame type tag.
    UnknownType(u8),
    /// The payload length does not match the tag's fixed size.
    BadLength {
        /// The offending frame tag.
        tag: u8,
        /// Payload length from the prefix.
        got: u32,
        /// The exact length this tag requires.
        want: u32,
    },
    /// A hello frame carried an unsupported protocol version.
    BadVersion(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized(n) => {
                write!(f, "frame length {n} outside 1..={MAX_FRAME_LEN}")
            }
            WireError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            WireError::BadLength { tag, got, want } => {
                write!(f, "frame type {tag} has payload {got}, requires {want}")
            }
            WireError::BadVersion(v) => {
                write!(f, "protocol version {v}, this build speaks {PROTOCOL_VERSION}")
            }
        }
    }
}

impl std::error::Error for WireError {}

const TAG_HELLO: u8 = 1;
const TAG_JOIN: u8 = 2;
const TAG_GRANTED: u8 = 3;
const TAG_MINE_SUBMIT: u8 = 4;
const TAG_ADMITTED: u8 = 5;
const TAG_DEPART: u8 = 6;
const TAG_DEPART_ACK: u8 = 7;

/// Exact payload length (tag byte included) for `tag`.
fn payload_len(tag: u8) -> Option<u32> {
    Some(match tag {
        TAG_HELLO => 1 + 4 + 8 + 16 + 1 + 4 + 4,
        TAG_JOIN => 1 + 8 + 8,
        TAG_GRANTED => 1 + 8 + 32,
        TAG_MINE_SUBMIT => 1 + 8 + 32 + 8,
        TAG_ADMITTED => 1 + 8,
        TAG_DEPART => 1 + 8 + 32,
        TAG_DEPART_ACK => 1 + 8,
        _ => return None,
    })
}

fn u32_at(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("4 bytes"))
}

fn u64_at(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"))
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::Join { .. } => TAG_JOIN,
            Frame::Granted { .. } => TAG_GRANTED,
            Frame::MineSubmit { .. } => TAG_MINE_SUBMIT,
            Frame::Admitted { .. } => TAG_ADMITTED,
            Frame::Depart { .. } => TAG_DEPART,
            Frame::DepartAck { .. } => TAG_DEPART_ACK,
        }
    }

    /// Serializes the frame: length prefix plus payload.
    pub fn encode(&self) -> Vec<u8> {
        let len = payload_len(self.tag()).expect("known tag");
        let mut out = Vec::with_capacity(4 + len as usize);
        out.extend_from_slice(&len.to_le_bytes());
        out.push(self.tag());
        match *self {
            Frame::Hello { version, difficulty, nonce, mine_bits, mem_blocks, mem_passes } => {
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&difficulty.to_le_bytes());
                out.extend_from_slice(&nonce);
                out.push(mine_bits);
                out.extend_from_slice(&mem_blocks.to_le_bytes());
                out.extend_from_slice(&mem_passes.to_le_bytes());
            }
            Frame::Join { client_tag, solution } => {
                out.extend_from_slice(&client_tag.to_le_bytes());
                out.extend_from_slice(&solution.to_le_bytes());
            }
            Frame::Granted { identity, token } => {
                out.extend_from_slice(&identity.to_le_bytes());
                out.extend_from_slice(&token);
            }
            Frame::MineSubmit { identity, token, salt } => {
                out.extend_from_slice(&identity.to_le_bytes());
                out.extend_from_slice(&token);
                out.extend_from_slice(&salt.to_le_bytes());
            }
            Frame::Admitted { identity } | Frame::DepartAck { identity } => {
                out.extend_from_slice(&identity.to_le_bytes());
            }
            Frame::Depart { identity, token } => {
                out.extend_from_slice(&identity.to_le_bytes());
                out.extend_from_slice(&token);
            }
        }
        debug_assert_eq!(out.len(), 4 + len as usize);
        out
    }

    /// Decodes one frame from the front of `buf`, returning the frame and
    /// the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        if buf.len() < 4 {
            return Err(WireError::Truncated);
        }
        let len = u32_at(buf, 0);
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(WireError::Oversized(len));
        }
        let total = 4 + len as usize;
        if buf.len() < total {
            return Err(WireError::Truncated);
        }
        let payload = &buf[4..total];
        let tag = payload[0];
        let want = payload_len(tag).ok_or(WireError::UnknownType(tag))?;
        if len != want {
            return Err(WireError::BadLength { tag, got: len, want });
        }
        let frame = match tag {
            TAG_HELLO => {
                let version = u32_at(payload, 1);
                if version != PROTOCOL_VERSION {
                    return Err(WireError::BadVersion(version));
                }
                let mut nonce = [0u8; 16];
                nonce.copy_from_slice(&payload[13..29]);
                Frame::Hello {
                    version,
                    difficulty: u64_at(payload, 5),
                    nonce,
                    mine_bits: payload[29],
                    mem_blocks: u32_at(payload, 30),
                    mem_passes: u32_at(payload, 34),
                }
            }
            TAG_JOIN => {
                Frame::Join { client_tag: u64_at(payload, 1), solution: u64_at(payload, 9) }
            }
            TAG_GRANTED => {
                let mut token = [0u8; 32];
                token.copy_from_slice(&payload[9..41]);
                Frame::Granted { identity: u64_at(payload, 1), token }
            }
            TAG_MINE_SUBMIT => {
                let mut token = [0u8; 32];
                token.copy_from_slice(&payload[9..41]);
                Frame::MineSubmit { identity: u64_at(payload, 1), token, salt: u64_at(payload, 41) }
            }
            TAG_ADMITTED => Frame::Admitted { identity: u64_at(payload, 1) },
            TAG_DEPART => {
                let mut token = [0u8; 32];
                token.copy_from_slice(&payload[9..41]);
                Frame::Depart { identity: u64_at(payload, 1), token }
            }
            TAG_DEPART_ACK => Frame::DepartAck { identity: u64_at(payload, 1) },
            _ => unreachable!("payload_len vetted the tag"),
        };
        Ok((frame, total))
    }
}

/// Reads one frame from a stream (the TCP transport's read loop).
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer hung
/// up), an `InvalidData` error carrying the [`WireError`] message for
/// malformed bytes, and any transport error as-is.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Frame>> {
    let mut prefix = [0u8; 4];
    match r.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(prefix);
    let invalid =
        |w: WireError| std::io::Error::new(std::io::ErrorKind::InvalidData, w.to_string());
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(invalid(WireError::Oversized(len)));
    }
    let mut buf = vec![0u8; 4 + len as usize];
    buf[..4].copy_from_slice(&prefix);
    r.read_exact(&mut buf[4..])
        .map_err(|e| std::io::Error::new(e.kind(), format!("frame body unreadable: {e}")))?;
    let (frame, used) = Frame::decode(&buf).map_err(invalid)?;
    debug_assert_eq!(used, buf.len());
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                difficulty: 42,
                nonce: [7u8; 16],
                mine_bits: 3,
                mem_blocks: 64,
                mem_passes: 2,
            },
            Frame::Join { client_tag: u64::MAX, solution: 12345 },
            Frame::Granted { identity: 9, token: [0xabu8; 32] },
            Frame::MineSubmit { identity: 9, token: [0xabu8; 32], salt: 77 },
            Frame::Admitted { identity: 9 },
            Frame::Depart { identity: 9, token: [0xabu8; 32] },
            Frame::DepartAck { identity: 9 },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for frame in samples() {
            let bytes = frame.encode();
            let (back, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(back, frame);
            assert_eq!(used, bytes.len());
            // Trailing bytes (the next frame) are not consumed.
            let mut two = bytes.clone();
            two.extend_from_slice(&bytes);
            let (back, used) = Frame::decode(&two).unwrap();
            assert_eq!(back, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        for frame in samples() {
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                let err = Frame::decode(&bytes[..cut]).unwrap_err();
                assert_eq!(err, WireError::Truncated, "frame {frame:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn oversized_and_zero_length_prefixes_rejected() {
        // A peer claiming a huge payload must be refused before any
        // allocation is sized from the prefix.
        for len in [0u32, MAX_FRAME_LEN + 1, u32::MAX] {
            let mut bytes = len.to_le_bytes().to_vec();
            bytes.extend_from_slice(&[0u8; 8]);
            assert_eq!(Frame::decode(&bytes).unwrap_err(), WireError::Oversized(len));
        }
    }

    #[test]
    fn unknown_tag_and_wrong_length_rejected() {
        let mut bytes = 9u32.to_le_bytes().to_vec();
        bytes.push(99); // no such tag
        bytes.extend_from_slice(&[0u8; 8]);
        assert_eq!(Frame::decode(&bytes).unwrap_err(), WireError::UnknownType(99));

        // A Join tag with an Admitted-sized payload: length/tag mismatch.
        let mut bytes = 9u32.to_le_bytes().to_vec();
        bytes.push(TAG_JOIN);
        bytes.extend_from_slice(&[0u8; 8]);
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::BadLength { tag: TAG_JOIN, got: 9, want: 17 }
        );
    }

    #[test]
    fn hello_version_is_checked() {
        let hello = Frame::Hello {
            version: PROTOCOL_VERSION,
            difficulty: 1,
            nonce: [0u8; 16],
            mine_bits: 1,
            mem_blocks: 2,
            mem_passes: 1,
        };
        let mut bytes = hello.encode();
        bytes[5] = 0xfe; // stamp a bogus version over the LE u32 at payload[1..5]
        match Frame::decode(&bytes).unwrap_err() {
            WireError::BadVersion(v) => assert_eq!(v & 0xff, 0xfe),
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn fuzz_shaped_garbage_never_panics() {
        // Deterministic pseudo-random byte soup: decode must return an
        // error or a frame, never panic, for every prefix length.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut bytes = Vec::with_capacity(512);
        for _ in 0..512 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            bytes.push((state >> 56) as u8);
        }
        for cut in 0..=bytes.len() {
            let _ = Frame::decode(&bytes[..cut]);
        }
        // And through the stream reader, which must reject the oversized
        // prefix rather than allocate from it.
        let mut cursor = std::io::Cursor::new(bytes);
        let result = read_frame(&mut cursor);
        assert!(result.is_err() || matches!(result, Ok(Some(_)) | Ok(None)));
    }

    #[test]
    fn read_frame_matches_decode_and_handles_eof() {
        let frames = samples();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut cursor = std::io::Cursor::new(stream);
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).unwrap(), Some(*f));
        }
        // Clean EOF at a frame boundary.
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
        // EOF mid-frame is an error, not a silent None.
        let bytes = frames[1].encode();
        let mut cursor = std::io::Cursor::new(&bytes[..bytes.len() - 3]);
        assert!(read_frame(&mut cursor).is_err());
    }
}
