//! End-to-end gate tests: workload replay through the loopback
//! transport, plus a TCP smoke test over localhost.
//!
//! The loopback tests are the CI contract — they exercise the full wire
//! encode/decode path deterministically with no sockets. The TCP test
//! covers the thread-per-connection server with a real kernel socket
//! pair on 127.0.0.1.

use std::sync::{Arc, Mutex};

use sybil_churn::{ArrivalProcess, ChurnModel, SessionModel};
use sybil_gate::memhard::{mine, MemHardParams};
use sybil_gate::{replay, Frame, GateConfig, GateService, ReplayConfig, ShardedGate};
use sybil_sim::Time;

fn workload() -> sybil_sim::Workload {
    ChurnModel {
        name: "gate-e2e",
        initial_size: 40,
        arrival: ArrivalProcess::Poisson { rate: 30.0 },
        session: SessionModel::Exponential { mean: 4.0 },
    }
    .generate(Time(15.0), 12)
}

fn gate_cfg(initial_size: u64) -> GateConfig {
    GateConfig {
        difficulty_floor: 2,
        difficulty_cap: 64,
        mine_bits: 1,
        mem: MemHardParams { blocks: 4, passes: 1 },
        initial_size,
        ..GateConfig::default()
    }
}

/// Same seed and workload ⇒ byte-identical decision logs and equal
/// fingerprints, across fresh service instances.
#[test]
fn replay_decision_log_is_byte_identical() {
    let run = || {
        let wl = workload();
        let initial = wl.initial_size();
        let cfg = ReplayConfig { horizon: Time(12.0), adversarial_fraction: 0.25, seed: 5 };
        let (gate, report) = replay(wl, GateService::new(gate_cfg(initial)), &cfg);
        (gate.decision_log().to_vec(), gate.fingerprint(), gate.counters(), report.connections)
    };
    let (log_a, fp_a, counters_a, conns_a) = run();
    let (log_b, fp_b, counters_b, conns_b) = run();
    assert!(!log_a.is_empty(), "the replay must produce decisions");
    assert_eq!(log_a, log_b, "decision logs must be byte-identical");
    assert_eq!(fp_a, fp_b);
    assert_eq!(counters_a, counters_b);
    assert_eq!(conns_a, conns_b);
    // The mix covers every decision kind the bench fingerprints.
    assert!(counters_a.admitted > 0 && counters_a.rejected_pow > 0 && counters_a.departed > 0);
}

/// The replay outcome is a pure function of (workload, seed, fraction):
/// changing any of them changes the fingerprint.
#[test]
fn fingerprint_is_sensitive_to_inputs() {
    let fp = |wl_seed: u64, replay_seed: u64, fraction: f64| {
        let wl = ChurnModel {
            name: "gate-e2e",
            initial_size: 40,
            arrival: ArrivalProcess::Poisson { rate: 30.0 },
            session: SessionModel::Exponential { mean: 4.0 },
        }
        .generate(Time(15.0), wl_seed);
        let initial = wl.initial_size();
        let cfg =
            ReplayConfig { horizon: Time(12.0), adversarial_fraction: fraction, seed: replay_seed };
        let (gate, _) = replay(wl, GateService::new(gate_cfg(initial)), &cfg);
        gate.fingerprint()
    };
    let base = fp(12, 5, 0.25);
    assert_eq!(base, fp(12, 5, 0.25));
    assert_ne!(base, fp(13, 5, 0.25), "different workload must shift the log");
    assert_ne!(base, fp(12, 6, 0.25), "different client seed must shift the log");
    assert_ne!(base, fp(12, 5, 0.0), "different adversary mix must shift the log");
}

/// Full two-phase admission over a real TCP socket on localhost,
/// speaking the same bytes the loopback tests pin.
#[test]
fn tcp_round_trip_admits_one_identity() {
    use std::io::Write;
    use sybil_crypto::{Challenge, Solver};
    use sybil_gate::{read_frame, transport};

    let Ok(listener) = std::net::TcpListener::bind("127.0.0.1:0") else {
        eprintln!("skipping TCP smoke test: cannot bind localhost in this environment");
        return;
    };
    let addr = listener.local_addr().expect("bound listener has an address");
    let service = Arc::new(Mutex::new(GateService::new(gate_cfg(0))));
    let server = Arc::clone(&service);
    std::thread::spawn(move || {
        let _ = transport::serve(listener, server, 2);
    });

    let mut stream = std::net::TcpStream::connect(addr).expect("connect to local gate");
    let hello = read_frame(&mut stream).expect("read hello").expect("hello before EOF");
    let Frame::Hello { difficulty, nonce, mine_bits, mem_blocks, mem_passes, .. } = hello else {
        panic!("first frame must be the hello, got {hello:?}")
    };

    let client_tag = 77u64;
    let challenge = Challenge::new(&nonce, &client_tag.to_be_bytes(), difficulty);
    let solution = Solver::new().solve(&challenge).nonce;
    stream.write_all(&Frame::Join { client_tag, solution }.encode()).expect("send join");
    let reply = read_frame(&mut stream).expect("read grant").expect("grant before EOF");
    let Frame::Granted { identity, token } = reply else { panic!("expected grant, got {reply:?}") };

    let mem = MemHardParams { blocks: mem_blocks, passes: mem_passes };
    let mined = mine(&token, mine_bits, &mem);
    stream
        .write_all(&Frame::MineSubmit { identity, token, salt: mined.salt }.encode())
        .expect("send mine");
    let reply = read_frame(&mut stream).expect("read admit").expect("admit before EOF");
    assert_eq!(reply, Frame::Admitted { identity });

    stream.write_all(&Frame::Depart { identity, token }.encode()).expect("send depart");
    let reply = read_frame(&mut stream).expect("read ack").expect("ack before EOF");
    assert_eq!(reply, Frame::DepartAck { identity });

    let counters = service.lock().expect("service lock").counters();
    assert_eq!((counters.granted, counters.admitted, counters.departed), (1, 1, 1));
}

/// The sharded service behind the same TCP front end: a full two-phase
/// admission against a 3-shard gate, plus the serial replay equivalence
/// that pins its fingerprint to the monolithic service's.
#[test]
fn tcp_sharded_service_admits_and_matches_monolithic_fingerprint() {
    use std::io::Write;
    use sybil_crypto::{Challenge, Solver};
    use sybil_gate::{read_frame, transport};

    // Serial replay equivalence first (no sockets needed): the sharded
    // gate's decision fingerprint equals the monolithic gate's.
    let run_cfg = ReplayConfig { horizon: Time(12.0), adversarial_fraction: 0.25, seed: 5 };
    let wl = workload();
    let initial = wl.initial_size();
    let (mono, _) = replay(wl.clone(), GateService::new(gate_cfg(initial)), &run_cfg);
    let (sharded, _) = replay(wl, ShardedGate::new(gate_cfg(initial), 3), &run_cfg);
    assert_eq!(sharded.fingerprint(), mono.fingerprint(), "serial sharded replay must match");

    let Ok(listener) = std::net::TcpListener::bind("127.0.0.1:0") else {
        eprintln!("skipping TCP smoke test: cannot bind localhost in this environment");
        return;
    };
    let addr = listener.local_addr().expect("bound listener has an address");
    let service = Arc::new(ShardedGate::new(gate_cfg(0), 3));
    let server = Arc::clone(&service);
    std::thread::spawn(move || {
        let _ = transport::serve(listener, server, 2);
    });

    let mut stream = std::net::TcpStream::connect(addr).expect("connect to local gate");
    let hello = read_frame(&mut stream).expect("read hello").expect("hello before EOF");
    let Frame::Hello { difficulty, nonce, mine_bits, mem_blocks, mem_passes, .. } = hello else {
        panic!("first frame must be the hello, got {hello:?}")
    };
    let client_tag = 99u64;
    let challenge = Challenge::new(&nonce, &client_tag.to_be_bytes(), difficulty);
    let solution = Solver::new().solve(&challenge).nonce;
    stream.write_all(&Frame::Join { client_tag, solution }.encode()).expect("send join");
    let reply = read_frame(&mut stream).expect("read grant").expect("grant before EOF");
    let Frame::Granted { identity, token } = reply else { panic!("expected grant, got {reply:?}") };
    let mem = MemHardParams { blocks: mem_blocks, passes: mem_passes };
    let mined = mine(&token, mine_bits, &mem);
    stream
        .write_all(&Frame::MineSubmit { identity, token, salt: mined.salt }.encode())
        .expect("send mine");
    let reply = read_frame(&mut stream).expect("read admit").expect("admit before EOF");
    assert_eq!(reply, Frame::Admitted { identity });

    let counters = service.counters();
    assert_eq!((counters.granted, counters.admitted), (1, 1));
    assert_eq!(service.shard_count(), 3);
}

/// A malformed frame over TCP closes the connection without a reply and
/// without disturbing the service.
#[test]
fn tcp_malformed_frame_closes_connection() {
    use std::io::{Read, Write};
    use sybil_gate::{read_frame, transport};

    let Ok(listener) = std::net::TcpListener::bind("127.0.0.1:0") else {
        eprintln!("skipping TCP smoke test: cannot bind localhost in this environment");
        return;
    };
    let addr = listener.local_addr().expect("bound listener has an address");
    let service = Arc::new(Mutex::new(GateService::new(gate_cfg(0))));
    std::thread::spawn({
        let server = Arc::clone(&service);
        move || {
            let _ = transport::serve(listener, server, 2);
        }
    });

    let mut stream = std::net::TcpStream::connect(addr).expect("connect to local gate");
    let _hello = read_frame(&mut stream).expect("read hello").expect("hello before EOF");
    // An oversized length prefix: the server must refuse to allocate and
    // hang up.
    stream.write_all(&u32::MAX.to_le_bytes()).expect("send bogus prefix");
    stream.write_all(&[0u8; 16]).expect("send bogus body");
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "no reply bytes for a malformed frame");
    assert_eq!(service.lock().expect("service lock").counters().granted, 0);
}
