//! Pairwise channel authentication with HMAC-SHA256.
//!
//! The model (paper Section 12) grants secure, authenticated channels; this
//! module realizes them so the simulation can *check* the assumption rather
//! than merely assert it. Each ordered pair of nodes shares a key derived
//! from a master secret; a message carries an HMAC tag binding sender,
//! recipient, and payload, so a Byzantine node cannot forge traffic between
//! two good nodes without the master secret.

use crate::network::NodeId;
use sybil_crypto::hmac::{verify_tag, HmacSha256};
use sybil_crypto::sha256::Digest;

/// Derives pairwise channel keys from a master secret.
///
/// A real deployment would run a key exchange; the simulation's trusted
/// dealer (the GenID bootstrap) plays that role here.
#[derive(Clone, Debug)]
pub struct AuthKeys {
    master: Vec<u8>,
}

impl AuthKeys {
    /// Creates a key derivation context from the master secret.
    pub fn new(master: &[u8]) -> Self {
        AuthKeys { master: master.to_vec() }
    }

    /// The shared key for the unordered pair `{a, b}`.
    ///
    /// Allocation-free: seal/open sit on the gate service's per-request
    /// path, so the 16 bytes of key material stay on the stack.
    fn pair_key(&self, a: NodeId, b: NodeId) -> Digest {
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&lo.0.to_be_bytes());
        material[8..].copy_from_slice(&hi.0.to_be_bytes());
        let mut mac = HmacSha256::new(&self.master);
        mac.update(&material);
        mac.finalize()
    }

    /// Authenticates `payload` on the channel `from → to`.
    pub fn seal(&self, from: NodeId, to: NodeId, payload: &[u8]) -> AuthenticatedMessage {
        let key = self.pair_key(from, to);
        let tag = tag_for(&key, from, to, payload);
        AuthenticatedMessage { from, to, payload: payload.to_vec(), tag }
    }

    /// Verifies an authenticated message; returns the payload if genuine.
    pub fn open<'a>(&self, msg: &'a AuthenticatedMessage) -> Option<&'a [u8]> {
        let key = self.pair_key(msg.from, msg.to);
        let expect = tag_for(&key, msg.from, msg.to, &msg.payload);
        if verify_tag(&expect, &msg.tag) {
            Some(&msg.payload)
        } else {
            None
        }
    }
}

/// Tags `(from, to, payload)` under `key` by streaming the parts into the
/// HMAC — no per-message heap concatenation, bit-identical to hashing the
/// concatenated material (pinned by `tags_bit_identical_to_concatenation`).
fn tag_for(key: &Digest, from: NodeId, to: NodeId, payload: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key.as_bytes());
    mac.update(&from.0.to_be_bytes());
    mac.update(&to.0.to_be_bytes());
    mac.update(payload);
    mac.finalize()
}

/// A message with sender/recipient binding and an HMAC tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthenticatedMessage {
    /// Claimed sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// HMAC-SHA256 tag over (from, to, payload).
    pub tag: Digest,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let keys = AuthKeys::new(b"master-secret");
        let msg = keys.seal(NodeId(1), NodeId(2), b"vote: entry 7");
        assert_eq!(keys.open(&msg), Some(&b"vote: entry 7"[..]));
    }

    #[test]
    fn tampered_payload_rejected() {
        let keys = AuthKeys::new(b"master-secret");
        let mut msg = keys.seal(NodeId(1), NodeId(2), b"vote: entry 7");
        msg.payload[6] ^= 1;
        assert_eq!(keys.open(&msg), None);
    }

    #[test]
    fn forged_sender_rejected() {
        let keys = AuthKeys::new(b"master-secret");
        let mut msg = keys.seal(NodeId(1), NodeId(2), b"payload");
        // Byzantine node 3 claims the message came from node 5.
        msg.from = NodeId(5);
        assert_eq!(keys.open(&msg), None);
    }

    #[test]
    fn redirected_recipient_rejected() {
        let keys = AuthKeys::new(b"master-secret");
        let mut msg = keys.seal(NodeId(1), NodeId(2), b"payload");
        msg.to = NodeId(9);
        assert_eq!(keys.open(&msg), None);
    }

    #[test]
    fn different_masters_do_not_interoperate() {
        let a = AuthKeys::new(b"master-a");
        let b = AuthKeys::new(b"master-b");
        let msg = a.seal(NodeId(1), NodeId(2), b"payload");
        assert_eq!(b.open(&msg), None);
    }

    #[test]
    fn pair_key_is_symmetric() {
        let keys = AuthKeys::new(b"m");
        assert_eq!(keys.pair_key(NodeId(3), NodeId(8)), keys.pair_key(NodeId(8), NodeId(3)));
    }

    /// Pins the streaming construction bit-identical to the original
    /// heap-concatenating one: any drift here would silently invalidate every
    /// previously issued tag.
    #[test]
    fn tags_bit_identical_to_concatenation() {
        use sybil_crypto::hmac::hmac_sha256;

        let keys = AuthKeys::new(b"pin-master");
        for (from, to, payload) in [
            (NodeId(1), NodeId(2), &b"vote: entry 7"[..]),
            (NodeId(u64::MAX), NodeId(0), &b""[..]),
            (NodeId(42), NodeId(42), &[0u8; 200][..]),
        ] {
            // Old pair_key: HMAC(master, lo_be || hi_be).
            let (lo, hi) = if from.0 <= to.0 { (from, to) } else { (to, from) };
            let mut key_material = Vec::with_capacity(16);
            key_material.extend_from_slice(&lo.0.to_be_bytes());
            key_material.extend_from_slice(&hi.0.to_be_bytes());
            let old_key = hmac_sha256(b"pin-master", &key_material);
            // Old tag_for: HMAC(pair_key, from_be || to_be || payload).
            let mut tag_material = Vec::with_capacity(16 + payload.len());
            tag_material.extend_from_slice(&from.0.to_be_bytes());
            tag_material.extend_from_slice(&to.0.to_be_bytes());
            tag_material.extend_from_slice(payload);
            let old_tag = hmac_sha256(old_key.as_bytes(), &tag_material);

            let msg = keys.seal(from, to, payload);
            assert_eq!(msg.tag, old_tag, "tag drifted for {from:?} -> {to:?}");
        }
    }
}
