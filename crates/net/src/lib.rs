//! Synchronous round-based message passing with authenticated channels.
//!
//! The decentralized variant of Ergo (paper Section 12) assumes synchronous
//! communication and "secure and authenticated communication channels
//! between all pairs of IDs in the committee", plus a channel between each
//! committee member and each system ID. This crate simulates that model:
//!
//! * [`network`] — a round-stepped network: sends queued during round `r`
//!   are delivered at round `r + 1`; Byzantine fault injection can drop or
//!   duplicate messages from designated nodes;
//! * [`auth`] — pairwise-keyed HMAC-SHA256 channel authentication (built on
//!   `sybil-crypto`), so forged senders are detectable exactly as the model
//!   assumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod network;

pub use auth::{AuthKeys, AuthenticatedMessage};
pub use network::{Network, NodeId};
