//! The synchronous round-based network.

use std::collections::HashMap;

/// A node address in the simulated network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// An in-flight or delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Claimed sender (Byzantine nodes may lie; see [`crate::auth`]).
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Payload.
    pub payload: M,
}

/// A synchronous network: messages sent in round `r` arrive in round `r+1`.
///
/// # Example
///
/// ```
/// use sybil_net::network::{Network, NodeId};
///
/// let mut net: Network<&str> = Network::new();
/// let a = net.register();
/// let b = net.register();
/// net.send(a, b, "hello");
/// assert!(net.inbox(b).is_empty()); // not delivered yet
/// net.step();
/// assert_eq!(net.inbox(b)[0].payload, "hello");
/// ```
#[derive(Clone, Debug)]
pub struct Network<M> {
    next_id: u64,
    round: u64,
    in_flight: Vec<Envelope<M>>,
    inboxes: HashMap<NodeId, Vec<Envelope<M>>>,
    /// Nodes whose outgoing messages are dropped (crash/partition injection).
    silenced: Vec<NodeId>,
    /// Directed links that drop messages.
    cut_links: Vec<(NodeId, NodeId)>,
    delivered: u64,
    dropped: u64,
}

impl<M> Default for Network<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Network<M> {
    /// An empty network at round 0.
    pub fn new() -> Self {
        Network {
            next_id: 0,
            round: 0,
            in_flight: Vec::new(),
            inboxes: HashMap::new(),
            silenced: Vec::new(),
            cut_links: Vec::new(),
            delivered: 0,
            dropped: 0,
        }
    }

    /// Registers a new node and returns its address.
    pub fn register(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.inboxes.insert(id, Vec::new());
        id
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.inboxes.len()
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Queues a message for delivery next round.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not registered.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        assert!(self.inboxes.contains_key(&to), "unknown recipient {to}");
        self.in_flight.push(Envelope { from, to, payload });
    }

    /// Queues a message to every registered node (including the sender).
    pub fn broadcast(&mut self, from: NodeId, payload: M)
    where
        M: Clone,
    {
        let targets: Vec<NodeId> = self.inboxes.keys().copied().collect();
        for to in targets {
            self.send(from, to, payload.clone());
        }
    }

    /// Injects a fault: all messages *from* `node` are dropped until
    /// [`restore`](Self::restore).
    pub fn silence(&mut self, node: NodeId) {
        if !self.silenced.contains(&node) {
            self.silenced.push(node);
        }
    }

    /// Clears a [`silence`](Self::silence) fault.
    pub fn restore(&mut self, node: NodeId) {
        self.silenced.retain(|&n| n != node);
    }

    /// Injects a fault on the directed link `from → to`.
    pub fn cut_link(&mut self, from: NodeId, to: NodeId) {
        if !self.cut_links.contains(&(from, to)) {
            self.cut_links.push((from, to));
        }
    }

    /// Advances one synchronous round, delivering queued messages (clearing
    /// last round's inboxes first).
    pub fn step(&mut self) {
        for inbox in self.inboxes.values_mut() {
            inbox.clear();
        }
        let pending = std::mem::take(&mut self.in_flight);
        for env in pending {
            if self.silenced.contains(&env.from) || self.cut_links.contains(&(env.from, env.to)) {
                self.dropped += 1;
                continue;
            }
            self.delivered += 1;
            self.inboxes.get_mut(&env.to).expect("recipient validated at send").push(env);
        }
        self.round += 1;
    }

    /// Messages delivered to `node` in the most recent round.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not registered.
    pub fn inbox(&self, node: NodeId) -> &[Envelope<M>] {
        self.inboxes.get(&node).expect("unknown node")
    }

    /// Total messages delivered so far (message-complexity accounting).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total messages dropped by fault injection.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_next_round() {
        let mut net: Network<u32> = Network::new();
        let a = net.register();
        let b = net.register();
        net.send(a, b, 7);
        assert!(net.inbox(b).is_empty());
        net.step();
        assert_eq!(net.inbox(b).len(), 1);
        assert_eq!(net.inbox(b)[0].from, a);
        // Inboxes clear the following round.
        net.step();
        assert!(net.inbox(b).is_empty());
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let mut net: Network<&str> = Network::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| net.register()).collect();
        net.broadcast(nodes[0], "hi");
        net.step();
        for &n in &nodes {
            assert_eq!(net.inbox(n).len(), 1);
        }
        assert_eq!(net.delivered(), 5);
    }

    #[test]
    fn silenced_node_messages_drop() {
        let mut net: Network<u32> = Network::new();
        let a = net.register();
        let b = net.register();
        net.silence(a);
        net.send(a, b, 1);
        net.send(b, a, 2);
        net.step();
        assert!(net.inbox(b).is_empty());
        assert_eq!(net.inbox(a).len(), 1);
        assert_eq!(net.dropped(), 1);
        net.restore(a);
        net.send(a, b, 3);
        net.step();
        assert_eq!(net.inbox(b).len(), 1);
    }

    #[test]
    fn cut_link_is_directional() {
        let mut net: Network<u32> = Network::new();
        let a = net.register();
        let b = net.register();
        net.cut_link(a, b);
        net.send(a, b, 1);
        net.send(b, a, 2);
        net.step();
        assert!(net.inbox(b).is_empty());
        assert_eq!(net.inbox(a).len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown recipient")]
    fn sending_to_unknown_node_panics() {
        let mut net: Network<u32> = Network::new();
        let a = net.register();
        net.send(a, NodeId(999), 1);
    }
}
