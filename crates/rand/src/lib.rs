//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment is offline, so this workspace vendors the small
//! subset of the `rand 0.8` API the repository actually uses: the [`Rng`]
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms and runs, which is all the
//! simulations require (reproducible streams, not cryptographic strength).
//!
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng`; any
//! test expectation pinned to concrete sampled values is pinned to *this*
//! generator.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness. Only `next_u64` is required; everything else is
/// derived from it.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a type with a canonical uniform distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a canonical uniform sampling rule, mirroring `rand`'s
/// `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling over `[0, n)` via 128-bit widening multiply
/// with rejection (Lemire's method).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u: f64 = f64::from_rng(rng);
        let x = self.start + u * (self.end - self.start);
        // `u` < 1, but rounding of the affine transform can still land
        // exactly on the excluded upper bound; clamp to honor `a..b`.
        if x < self.end {
            x
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        let u: f64 = f64::from_rng(rng);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u: f32 = f32::from_rng(rng);
        let x = self.start + u * (self.end - self.start);
        if x < self.end {
            x
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Seeded via SplitMix64 so nearby seeds give uncorrelated streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut StdRng = &mut rng;
        assert!((0.0..1.0).contains(&draw(dynrng)));
    }
}
