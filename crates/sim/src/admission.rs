//! Packed per-session admission state.
//!
//! The engine must remember, for every workload session, whether its join
//! was admitted, refused, or not yet processed — the departure event needs
//! the outcome long after the join fired. A `Vec<Option<bool>>` spends a
//! byte (and an allocation touch) per session, which at million-ID scale
//! is megabytes of resident state for three possible values.
//!
//! [`AdmissionMap`] packs the three states into 2 bits per session inside
//! fixed-size segments that are allocated lazily on first write. Sessions
//! the run never reaches (past the horizon, or simply not yet streamed)
//! cost nothing beyond a null slot in the segment directory, so resident
//! memory tracks the sessions actually *touched*, not the workload length.

/// Admission status of one workload session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionState {
    /// The session's join has not been processed yet.
    Pending,
    /// The join was admitted to membership.
    Admitted,
    /// The join paid but was refused entry (classifier gate).
    Refused,
}

impl AdmissionState {
    fn from_bits(bits: u64) -> AdmissionState {
        match bits {
            0 => AdmissionState::Pending,
            1 => AdmissionState::Admitted,
            _ => AdmissionState::Refused,
        }
    }

    fn to_bits(self) -> u64 {
        match self {
            AdmissionState::Pending => 0,
            AdmissionState::Admitted => 1,
            AdmissionState::Refused => 2,
        }
    }
}

/// Sessions per segment. 8192 two-bit entries pack into 2 KiB, small
/// enough that sparse access patterns waste little and large enough that
/// the directory stays tiny (one pointer per 8192 sessions).
pub(crate) const SEGMENT_ENTRIES: usize = 8192;
/// `u64` words per segment (`SEGMENT_ENTRIES · 2 / 64`).
const SEGMENT_WORDS: usize = SEGMENT_ENTRIES / 32;

/// The canonical resident-bytes gauge for an admission space of `len`
/// sessions of which `touched_segments` *global* segments hold
/// non-Pending state: touched payloads plus the full directory. For a
/// monolithic map this is exactly [`AdmissionMap::allocated_bytes`];
/// sharded state (whose slices each hold partial segments) reports this
/// same figure so the gauge is a pure function of the touched ID space,
/// independent of the shard count.
pub(crate) fn canonical_bytes(len: u64, touched_segments: usize) -> usize {
    touched_segments * SEGMENT_WORDS * 8
        + (len as usize).div_ceil(SEGMENT_ENTRIES)
            * std::mem::size_of::<Option<Box<[u64; SEGMENT_WORDS]>>>()
}

/// A segmented 2-bit packed map from session index to [`AdmissionState`].
///
/// Unallocated segments read as [`AdmissionState::Pending`]; the first
/// write to a segment allocates it (O(1) amortized — one zeroed 2 KiB
/// box). Reads and writes are O(1).
///
/// # Example
///
/// ```
/// use sybil_sim::admission::{AdmissionMap, AdmissionState};
///
/// let mut map = AdmissionMap::new(1_000_000);
/// assert_eq!(map.get(999_999), AdmissionState::Pending);
/// map.set(3, AdmissionState::Admitted);
/// map.set(4, AdmissionState::Refused);
/// assert_eq!(map.get(3), AdmissionState::Admitted);
/// assert_eq!(map.get(4), AdmissionState::Refused);
/// // Only the one touched segment is resident.
/// assert!(map.allocated_bytes() < 4096);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AdmissionMap {
    /// Segment directory; `None` segments are all-Pending.
    segments: Vec<Option<Box<[u64; SEGMENT_WORDS]>>>,
    /// Number of addressable sessions.
    len: u64,
    /// Segments currently allocated.
    allocated: usize,
}

impl AdmissionMap {
    /// Creates a map for `len` sessions; no segment memory is allocated
    /// until the first [`set`](Self::set).
    pub fn new(len: u64) -> Self {
        let n_segments = (len as usize).div_ceil(SEGMENT_ENTRIES);
        AdmissionMap { segments: vec![None; n_segments], len, allocated: 0 }
    }

    /// Number of addressable sessions.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the map addresses no sessions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The admission state of session `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: u64) -> AdmissionState {
        assert!(index < self.len, "admission index {index} out of bounds (len {})", self.len);
        let index = index as usize;
        match &self.segments[index / SEGMENT_ENTRIES] {
            None => AdmissionState::Pending,
            Some(words) => {
                let slot = index % SEGMENT_ENTRIES;
                let bits = (words[slot / 32] >> ((slot % 32) * 2)) & 0b11;
                AdmissionState::from_bits(bits)
            }
        }
    }

    /// Sets the admission state of session `index`, allocating its segment
    /// on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: u64, state: AdmissionState) {
        assert!(index < self.len, "admission index {index} out of bounds (len {})", self.len);
        let index = index as usize;
        let segment = &mut self.segments[index / SEGMENT_ENTRIES];
        if segment.is_none() {
            if state == AdmissionState::Pending {
                return; // Writing the default into a virgin segment is a no-op.
            }
            *segment = Some(Box::new([0u64; SEGMENT_WORDS]));
            self.allocated += 1;
        }
        let words = segment.as_mut().expect("segment allocated above");
        let slot = index % SEGMENT_ENTRIES;
        let shift = (slot % 32) * 2;
        let word = &mut words[slot / 32];
        *word = (*word & !(0b11 << shift)) | (state.to_bits() << shift);
    }

    /// Allocates every segment up front.
    ///
    /// Used by the engine for workload sources that are fully resident
    /// anyway (the session universe already occupies memory, so lazy
    /// segment allocation buys no residency story — it only costs
    /// mid-loop allocations); disk-streamed sources stay lazy. The
    /// canonical report gauge counts *touched* segments, not allocated
    /// ones, so reports are identical either way.
    pub fn preallocate(&mut self) {
        for segment in &mut self.segments {
            if segment.is_none() {
                *segment = Some(Box::new([0u64; SEGMENT_WORDS]));
            }
        }
        self.allocated = self.segments.len();
    }

    /// Extends the map to address `len` sessions (no-op if it already
    /// does). New sessions read as [`AdmissionState::Pending`] and cost
    /// only directory slots until written — this is how a long-running
    /// service grows its identity space without copying packed state.
    pub fn grow(&mut self, len: u64) {
        if len <= self.len {
            return;
        }
        let n_segments = (len as usize).div_ceil(SEGMENT_ENTRIES);
        self.segments.resize(n_segments, None);
        self.len = len;
    }

    /// Number of segments currently allocated.
    pub fn allocated_segments(&self) -> usize {
        self.allocated
    }

    /// Resident bytes: allocated segment payloads plus the directory.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated * SEGMENT_WORDS * 8
            + self.segments.len() * std::mem::size_of::<Option<Box<[u64; SEGMENT_WORDS]>>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_pending() {
        let map = AdmissionMap::new(100);
        for i in 0..100 {
            assert_eq!(map.get(i), AdmissionState::Pending);
        }
        assert_eq!(map.allocated_segments(), 0);
        assert_eq!(map.len(), 100);
        assert!(!map.is_empty());
        assert!(AdmissionMap::new(0).is_empty());
    }

    #[test]
    fn set_get_roundtrip_across_segments() {
        let len = (3 * SEGMENT_ENTRIES + 17) as u64;
        let mut map = AdmissionMap::new(len);
        // A deterministic pattern touching every segment and both parities.
        let state_for = |i: u64| match i % 3 {
            0 => AdmissionState::Pending,
            1 => AdmissionState::Admitted,
            _ => AdmissionState::Refused,
        };
        for i in (0..len).step_by(7) {
            map.set(i, state_for(i));
        }
        for i in 0..len {
            let want = if i % 7 == 0 { state_for(i) } else { AdmissionState::Pending };
            assert_eq!(map.get(i), want, "index {i}");
        }
    }

    #[test]
    fn neighbors_do_not_clobber() {
        let mut map = AdmissionMap::new(64);
        map.set(10, AdmissionState::Admitted);
        map.set(11, AdmissionState::Refused);
        map.set(12, AdmissionState::Admitted);
        map.set(11, AdmissionState::Admitted); // overwrite
        assert_eq!(map.get(10), AdmissionState::Admitted);
        assert_eq!(map.get(11), AdmissionState::Admitted);
        assert_eq!(map.get(12), AdmissionState::Admitted);
        assert_eq!(map.get(9), AdmissionState::Pending);
        assert_eq!(map.get(13), AdmissionState::Pending);
    }

    #[test]
    fn lazy_allocation_is_per_segment() {
        let mut map = AdmissionMap::new(10 * SEGMENT_ENTRIES as u64);
        assert_eq!(map.allocated_segments(), 0);
        // Pending writes allocate nothing.
        map.set(5, AdmissionState::Pending);
        assert_eq!(map.allocated_segments(), 0);
        map.set(0, AdmissionState::Admitted);
        map.set(SEGMENT_ENTRIES as u64 - 1, AdmissionState::Refused);
        assert_eq!(map.allocated_segments(), 1);
        map.set(9 * SEGMENT_ENTRIES as u64, AdmissionState::Admitted);
        assert_eq!(map.allocated_segments(), 2);
        // 2 KiB per segment plus the directory.
        assert!(map.allocated_bytes() >= 2 * SEGMENT_WORDS * 8);
        assert!(map.allocated_bytes() < 3 * SEGMENT_WORDS * 8 + 1024);
    }

    #[test]
    fn grow_extends_without_disturbing_state() {
        let mut map = AdmissionMap::new(10);
        map.set(3, AdmissionState::Admitted);
        map.grow(5); // shrinking request is a no-op
        assert_eq!(map.len(), 10);
        map.grow(2 * SEGMENT_ENTRIES as u64 + 1);
        assert_eq!(map.len(), 2 * SEGMENT_ENTRIES as u64 + 1);
        assert_eq!(map.get(3), AdmissionState::Admitted);
        assert_eq!(map.get(2 * SEGMENT_ENTRIES as u64), AdmissionState::Pending);
        // Growth adds directory slots, not segment payloads.
        assert_eq!(map.allocated_segments(), 1);
        map.set(2 * SEGMENT_ENTRIES as u64, AdmissionState::Refused);
        assert_eq!(map.get(2 * SEGMENT_ENTRIES as u64), AdmissionState::Refused);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        AdmissionMap::new(10).get(10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        AdmissionMap::new(10).set(10, AdmissionState::Admitted);
    }
}
