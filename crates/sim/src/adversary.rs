//! Adversary strategies.
//!
//! The paper's adversary (Section 2) perfectly coordinates all Sybil IDs,
//! schedules join/departure timing adaptively, and is resource-bounded: it
//! can solve a `κ`-fraction of challenges in any round where all IDs solve
//! challenges, and in the experiments (Section 10.1) it spends at rate `T`.
//!
//! The engine accrues budget at rate `T` and consults the strategy at its
//! requested wakeup times and at purge/periodic decision points.

use crate::cost::Cost;
use crate::time::Time;

/// A read-only snapshot of what the adversary can observe.
///
/// The paper's adversary can read all messages, so it sees the full
/// membership state and the current entrance quote.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DefenseView {
    /// Current time.
    pub now: Time,
    /// Total membership size.
    pub n_members: u64,
    /// The adversary's own Sybil IDs currently in the system.
    pub n_bad: u64,
    /// Current entrance-challenge quote.
    pub quote: Cost,
}

/// What the adversary chooses to do at a wakeup.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AdversaryAction {
    /// Spend up to this much on entrance challenges right now.
    pub join_budget: Cost,
    /// Attempt at most this many joins.
    pub max_joins: u64,
    /// Voluntarily depart this many Sybil IDs first.
    pub departs: u64,
}

impl AdversaryAction {
    /// An action that does nothing.
    pub const IDLE: AdversaryAction =
        AdversaryAction { join_budget: Cost::ZERO, max_joins: 0, departs: 0 };
}

/// A Sybil adversary strategy.
pub trait Adversary {
    /// Strategy name for reports.
    fn name(&self) -> String;

    /// When the adversary next wants control. `None` means it only reacts
    /// to purge/periodic decision points.
    fn next_wakeup(&self, now: Time) -> Option<Time>;

    /// Whether this strategy ever reads [`DefenseView::quote`].
    ///
    /// Computing the quote is the most expensive part of assembling a
    /// [`DefenseView`] (a windowed count inside the defense), and the
    /// engine assembles one on every adversary wakeup — the hottest event
    /// class in attack sweeps. Strategies that ignore the quote (most of
    /// them: they spend whatever the budget allows) should return `false`;
    /// the engine then passes [`Cost::ZERO`] in the view's quote field.
    /// Purely an optimization hint — returning `true` is always correct.
    fn needs_quote(&self) -> bool {
        true
    }

    /// Decides what to do at a wakeup, given the current `view` and
    /// available `budget`.
    fn act(&mut self, view: &DefenseView, budget: Cost) -> AdversaryAction;

    /// During a purge, how many Sybil IDs to retain by re-solving 1-hard
    /// challenges. `cap` is the `κ`-fraction limit already computed by the
    /// engine; the returned value is additionally clamped to `cap` and to
    /// the available `budget`.
    fn purge_retention(&mut self, view: &DefenseView, cap: u64, budget: Cost) -> u64;

    /// At a periodic charge costing `cost_per_id` per Sybil ID, how many to
    /// keep paying for (rest are dropped).
    fn periodic_retention(&mut self, view: &DefenseView, cost_per_id: Cost, budget: Cost) -> u64;
}

/// No adversary: the baseline "no attack" configuration (`T = 0`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullAdversary;

impl Adversary for NullAdversary {
    fn name(&self) -> String {
        "none".into()
    }

    fn needs_quote(&self) -> bool {
        false
    }

    fn next_wakeup(&self, _now: Time) -> Option<Time> {
        None
    }

    fn act(&mut self, _view: &DefenseView, _budget: Cost) -> AdversaryAction {
        AdversaryAction::IDLE
    }

    fn purge_retention(&mut self, _view: &DefenseView, _cap: u64, _budget: Cost) -> u64 {
        0
    }

    fn periodic_retention(&mut self, _view: &DefenseView, _c: Cost, _budget: Cost) -> u64 {
        0
    }
}

/// The paper's Figure-8/10 adversary: spends its entire budget on entrance
/// challenges, joining Sybil IDs as fast as affordable, evenly over time.
/// It abandons Sybil IDs at purges ("we assume that the adversary only
/// solves RB challenges to add IDs to the system", Section 10.1).
#[derive(Clone, Copy, Debug)]
pub struct BudgetJoiner {
    /// Budget accrual rate `T` (used to compute the next affordable instant).
    rate: f64,
    /// Smallest wakeup step, to bound event counts.
    min_step: f64,
    /// Largest wakeup step, so quotes are re-checked as windows decay.
    max_step: f64,
    /// Precomputed `clamp(1/rate, min_step, max_step)` — the wakeup step
    /// is consulted once per adversary event, the hottest event class.
    step: f64,
}

impl BudgetJoiner {
    /// Creates a joiner for spend rate `rate` (may be 0, which idles).
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be non-negative");
        let mut j = BudgetJoiner { rate, min_step: 0.01, max_step: 0.5, step: 0.0 };
        j.recompute_step();
        j
    }

    /// Overrides the wakeup step bounds (testing/precision control).
    pub fn with_steps(mut self, min_step: f64, max_step: f64) -> Self {
        assert!(min_step > 0.0 && max_step >= min_step);
        self.min_step = min_step;
        self.max_step = max_step;
        self.recompute_step();
        self
    }

    fn recompute_step(&mut self) {
        self.step = if self.rate == 0.0 {
            f64::INFINITY
        } else {
            self.min_step.max(1.0 / self.rate).min(self.max_step)
        };
    }
}

impl Adversary for BudgetJoiner {
    fn name(&self) -> String {
        format!("budget-joiner(T={})", self.rate)
    }

    fn needs_quote(&self) -> bool {
        false
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        if self.rate == 0.0 {
            None
        } else {
            Some(now + self.step)
        }
    }

    fn act(&mut self, _view: &DefenseView, budget: Cost) -> AdversaryAction {
        AdversaryAction { join_budget: budget, max_joins: u64::MAX, departs: 0 }
    }

    fn purge_retention(&mut self, _view: &DefenseView, _cap: u64, _budget: Cost) -> u64 {
        0
    }

    fn periodic_retention(&mut self, view: &DefenseView, cost_per_id: Cost, budget: Cost) -> u64 {
        // Keep as many Sybil IDs alive as the periodic budget sustains; any
        // leftover next wakeup goes to new joins.
        if cost_per_id.is_zero() {
            view.n_bad
        } else {
            ((budget.value() / cost_per_id.value()) as u64).min(view.n_bad)
        }
    }
}

/// Maintains a target fraction of Sybil members (used for the GoodJEst
/// robustness experiments, Figure 9: "different fractions of bad IDs that
/// persist in the system"), while optionally injecting extra IDs at rate `T`.
#[derive(Clone, Copy, Debug)]
pub struct FractionKeeper {
    target_fraction: f64,
    rate: f64,
    step: f64,
}

impl FractionKeeper {
    /// Keeps Sybil membership at `target_fraction` of the system, topping up
    /// as needed, with additional injection funded at rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `target_fraction` is not in `[0, 1)`.
    pub fn new(target_fraction: f64, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&target_fraction), "fraction must be in [0,1)");
        assert!(rate >= 0.0 && rate.is_finite());
        FractionKeeper { target_fraction, rate, step: 1.0 }
    }

    fn target_bad(&self, n_members: u64, n_bad: u64) -> u64 {
        // Solve b / (g + b) = f for the current good population g.
        let good = n_members - n_bad;
        if self.target_fraction <= 0.0 {
            return 0;
        }
        ((self.target_fraction / (1.0 - self.target_fraction)) * good as f64).round() as u64
    }
}

impl Adversary for FractionKeeper {
    fn name(&self) -> String {
        format!("fraction-keeper(f={}, T={})", self.target_fraction, self.rate)
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        Some(now + self.step)
    }

    fn act(&mut self, view: &DefenseView, budget: Cost) -> AdversaryAction {
        let target = self.target_bad(view.n_members, view.n_bad);
        let deficit = target.saturating_sub(view.n_bad);
        // Top-ups to hold the fraction are assumed funded (the experiment
        // *fixes* the persistent fraction); the spend-rate budget additionally
        // injects as many as it affords.
        let top_up_cost = Cost(deficit as f64 * view.quote.value().max(1.0));
        AdversaryAction {
            join_budget: top_up_cost + budget,
            max_joins: deficit.max(if self.rate > 0.0 { u64::MAX } else { 0 }),
            departs: view.n_bad.saturating_sub(target),
        }
    }

    fn purge_retention(&mut self, view: &DefenseView, cap: u64, _budget: Cost) -> u64 {
        self.target_bad(view.n_members, view.n_bad).min(view.n_bad).min(cap)
    }

    fn periodic_retention(&mut self, view: &DefenseView, _c: Cost, _budget: Cost) -> u64 {
        self.target_bad(view.n_members, view.n_bad).min(view.n_bad)
    }
}

/// Saves its budget and releases it in periodic bursts (stress-tests the
/// β-burstiness handling and the entrance-cost escalation).
#[derive(Clone, Copy, Debug)]
pub struct BurstJoiner {
    period: f64,
    rate: f64,
}

impl BurstJoiner {
    /// Bursts all accumulated budget every `period` seconds.
    pub fn new(rate: f64, period: f64) -> Self {
        assert!(period > 0.0 && rate >= 0.0);
        BurstJoiner { period, rate }
    }
}

impl Adversary for BurstJoiner {
    fn name(&self) -> String {
        format!("burst-joiner(T={}, every {}s)", self.rate, self.period)
    }

    fn needs_quote(&self) -> bool {
        false
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        if self.rate == 0.0 {
            None
        } else {
            Some(now + self.period)
        }
    }

    fn act(&mut self, _view: &DefenseView, budget: Cost) -> AdversaryAction {
        AdversaryAction { join_budget: budget, max_joins: u64::MAX, departs: 0 }
    }

    fn purge_retention(&mut self, _view: &DefenseView, _cap: u64, _budget: Cost) -> u64 {
        0
    }

    fn periodic_retention(&mut self, _view: &DefenseView, _c: Cost, _budget: Cost) -> u64 {
        0
    }
}

/// Joins cheaply and immediately departs, churning the join/departure
/// counters to force frequent purges without holding membership.
///
/// This is precisely the behaviour Heuristic 2 (symmetric-difference purge
/// triggering, Section 10.3) is designed to neutralize.
#[derive(Clone, Copy, Debug)]
pub struct ChurnForcer {
    rate: f64,
    step: f64,
}

impl ChurnForcer {
    /// Creates a churn-forcer funded at `rate`.
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite());
        ChurnForcer { rate, step: 0.05 }
    }
}

impl Adversary for ChurnForcer {
    fn name(&self) -> String {
        format!("churn-forcer(T={})", self.rate)
    }

    fn needs_quote(&self) -> bool {
        false
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        if self.rate == 0.0 {
            None
        } else {
            Some(now + self.step)
        }
    }

    fn act(&mut self, view: &DefenseView, budget: Cost) -> AdversaryAction {
        // Depart everything joined so far, then re-join with the full budget:
        // each join+depart pair advances the iteration counter by 2 while the
        // symmetric difference stays flat.
        AdversaryAction { join_budget: budget, max_joins: u64::MAX, departs: view.n_bad }
    }

    fn purge_retention(&mut self, _view: &DefenseView, _cap: u64, _budget: Cost) -> u64 {
        0
    }

    fn periodic_retention(&mut self, _view: &DefenseView, _c: Cost, _budget: Cost) -> u64 {
        0
    }
}

/// Spends on entrance like [`BudgetJoiner`] but also pays to retain the
/// maximum κ-fraction at every purge — the worst case for the Lemma 9
/// invariant (bad fraction < 3κ).
#[derive(Clone, Copy, Debug)]
pub struct PurgeSurvivor {
    rate: f64,
    min_step: f64,
}

impl PurgeSurvivor {
    /// Creates a purge-surviving adversary funded at `rate`.
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite());
        PurgeSurvivor { rate, min_step: 0.01 }
    }
}

impl Adversary for PurgeSurvivor {
    fn name(&self) -> String {
        format!("purge-survivor(T={})", self.rate)
    }

    fn needs_quote(&self) -> bool {
        false
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        if self.rate == 0.0 {
            None
        } else {
            Some(now + self.min_step.max(1.0 / self.rate).min(0.5))
        }
    }

    fn act(&mut self, _view: &DefenseView, budget: Cost) -> AdversaryAction {
        // Reserve nothing: the engine allows purge retention to draw from the
        // same accrued budget at purge time.
        AdversaryAction { join_budget: budget, max_joins: u64::MAX, departs: 0 }
    }

    fn purge_retention(&mut self, view: &DefenseView, cap: u64, budget: Cost) -> u64 {
        cap.min(view.n_bad).min(budget.value() as u64)
    }

    fn periodic_retention(&mut self, view: &DefenseView, cost_per_id: Cost, budget: Cost) -> u64 {
        if cost_per_id.is_zero() {
            view.n_bad
        } else {
            ((budget.value() / cost_per_id.value()) as u64).min(view.n_bad)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n_members: u64, n_bad: u64) -> DefenseView {
        DefenseView { now: Time(10.0), n_members, n_bad, quote: Cost(1.0) }
    }

    #[test]
    fn null_adversary_is_idle() {
        let mut a = NullAdversary;
        assert_eq!(a.next_wakeup(Time(0.0)), None);
        assert_eq!(a.act(&view(10, 0), Cost(100.0)), AdversaryAction::IDLE);
        assert_eq!(a.purge_retention(&view(10, 5), 3, Cost(100.0)), 0);
    }

    #[test]
    fn budget_joiner_spends_everything() {
        let mut a = BudgetJoiner::new(100.0);
        let act = a.act(&view(10, 0), Cost(42.0));
        assert_eq!(act.join_budget, Cost(42.0));
        assert_eq!(act.departs, 0);
        assert_eq!(a.purge_retention(&view(10, 5), 3, Cost(42.0)), 0);
        assert!(a.next_wakeup(Time(0.0)).unwrap() > Time(0.0));
        assert_eq!(BudgetJoiner::new(0.0).next_wakeup(Time(0.0)), None);
    }

    #[test]
    fn fraction_keeper_targets_fraction() {
        let a = FractionKeeper::new(0.2, 0.0);
        // 80 good, target f = 0.2 -> bad = 20.
        assert_eq!(a.target_bad(80, 0), 20);
        assert_eq!(a.target_bad(100, 20), 20);
        let mut a = FractionKeeper::new(0.2, 0.0);
        let act = a.act(&view(100, 20), Cost::ZERO);
        assert_eq!(act.departs, 0);
        // Over target: departs the excess.
        let act = a.act(&view(100, 50), Cost::ZERO);
        assert_eq!(act.departs, 50 - a.target_bad(100, 50));
    }

    #[test]
    fn purge_survivor_retains_up_to_cap_and_budget() {
        let mut a = PurgeSurvivor::new(10.0);
        assert_eq!(a.purge_retention(&view(100, 50), 20, Cost(100.0)), 20);
        assert_eq!(a.purge_retention(&view(100, 50), 20, Cost(5.0)), 5);
        assert_eq!(a.purge_retention(&view(100, 3), 20, Cost(100.0)), 3);
    }

    #[test]
    fn churn_forcer_departs_all_then_rejoins() {
        let mut a = ChurnForcer::new(5.0);
        let act = a.act(&view(100, 7), Cost(9.0));
        assert_eq!(act.departs, 7);
        assert_eq!(act.join_budget, Cost(9.0));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn fraction_keeper_rejects_bad_fraction() {
        let _ = FractionKeeper::new(1.0, 0.0);
    }
}
