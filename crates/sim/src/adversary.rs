//! Adversary strategies.
//!
//! The paper's adversary (Section 2) perfectly coordinates all Sybil IDs,
//! schedules join/departure timing adaptively, and is resource-bounded: it
//! can solve a `κ`-fraction of challenges in any round where all IDs solve
//! challenges, and in the experiments (Section 10.1) it spends at rate `T`.
//!
//! The engine accrues budget at rate `T` and consults the strategy at its
//! requested wakeup times and at purge/periodic decision points.

use crate::cost::Cost;
use crate::time::Time;

/// A read-only snapshot of what the adversary can observe.
///
/// The paper's adversary can read all messages, so it sees the full
/// membership state and the current entrance quote.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DefenseView {
    /// Current time.
    pub now: Time,
    /// Total membership size.
    pub n_members: u64,
    /// The adversary's own Sybil IDs currently in the system.
    pub n_bad: u64,
    /// Current entrance-challenge quote.
    pub quote: Cost,
}

/// What the adversary chooses to do at a wakeup.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AdversaryAction {
    /// Spend up to this much on entrance challenges right now.
    pub join_budget: Cost,
    /// Attempt at most this many joins.
    pub max_joins: u64,
    /// Voluntarily depart this many Sybil IDs first.
    pub departs: u64,
}

impl AdversaryAction {
    /// An action that does nothing.
    pub const IDLE: AdversaryAction =
        AdversaryAction { join_budget: Cost::ZERO, max_joins: 0, departs: 0 };
}

/// A Sybil adversary strategy.
pub trait Adversary {
    /// Strategy name for reports.
    fn name(&self) -> String;

    /// When the adversary next wants control. `None` means it only reacts
    /// to purge/periodic decision points.
    fn next_wakeup(&self, now: Time) -> Option<Time>;

    /// Whether this strategy ever reads [`DefenseView::quote`].
    ///
    /// Computing the quote is the most expensive part of assembling a
    /// [`DefenseView`] (a windowed count inside the defense), and the
    /// engine assembles one on every adversary wakeup — the hottest event
    /// class in attack sweeps. Strategies that ignore the quote (most of
    /// them: they spend whatever the budget allows) should return `false`;
    /// the engine then passes [`Cost::ZERO`] in the view's quote field.
    /// Purely an optimization hint — returning `true` is always correct.
    fn needs_quote(&self) -> bool {
        true
    }

    /// Decides what to do at a wakeup, given the current `view` and
    /// available `budget`.
    fn act(&mut self, view: &DefenseView, budget: Cost) -> AdversaryAction;

    /// During a purge, how many Sybil IDs to retain by re-solving 1-hard
    /// challenges. `cap` is the `κ`-fraction limit already computed by the
    /// engine; the returned value is additionally clamped to `cap` and to
    /// the available `budget`.
    fn purge_retention(&mut self, view: &DefenseView, cap: u64, budget: Cost) -> u64;

    /// At a periodic charge costing `cost_per_id` per Sybil ID, how many to
    /// keep paying for (rest are dropped).
    fn periodic_retention(&mut self, view: &DefenseView, cost_per_id: Cost, budget: Cost) -> u64;
}

/// Boxed strategies forward every callback, so registry-constructed
/// adversaries (see [`build_strategy`]) plug into the generic engine.
/// Sweeps that care about the last percent of wakeup dispatch cost should
/// keep using concrete types; the experiment drivers, whose cells are
/// dominated by the simulation itself, take the one virtual call.
impl Adversary for Box<dyn Adversary> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        (**self).next_wakeup(now)
    }

    fn needs_quote(&self) -> bool {
        (**self).needs_quote()
    }

    fn act(&mut self, view: &DefenseView, budget: Cost) -> AdversaryAction {
        (**self).act(view, budget)
    }

    fn purge_retention(&mut self, view: &DefenseView, cap: u64, budget: Cost) -> u64 {
        (**self).purge_retention(view, cap, budget)
    }

    fn periodic_retention(&mut self, view: &DefenseView, cost_per_id: Cost, budget: Cost) -> u64 {
        (**self).periodic_retention(view, cost_per_id, budget)
    }
}

/// Precomputes the wakeup step `clamp(1/rate, min_step, max_step)` shared
/// by the rate-funded strategies, `∞` for an idle (rate-0) adversary.
///
/// The step is consulted once per adversary wakeup — the hottest event
/// class in attack sweeps — so strategies cache this value at construction
/// and [`next_wakeup_at`] reads it without recomputing the clamp. The
/// bounds: a floor so event counts stay bounded, a ceiling so quotes are
/// re-checked as defense windows decay.
fn wakeup_step(rate: f64, min_step: f64, max_step: f64) -> f64 {
    assert!(min_step > 0.0 && max_step >= min_step);
    if rate == 0.0 {
        f64::INFINITY
    } else {
        min_step.max(1.0 / rate).min(max_step)
    }
}

/// The next wakeup for a cached [`wakeup_step`]: `None` when idle (the
/// infinite step is the single source of truth for "never wakes").
fn next_wakeup_at(step: f64, now: Time) -> Option<Time> {
    if step.is_infinite() {
        None
    } else {
        Some(now + step)
    }
}

/// No adversary: the baseline "no attack" configuration (`T = 0`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullAdversary;

impl Adversary for NullAdversary {
    fn name(&self) -> String {
        "none".into()
    }

    fn needs_quote(&self) -> bool {
        false
    }

    fn next_wakeup(&self, _now: Time) -> Option<Time> {
        None
    }

    fn act(&mut self, _view: &DefenseView, _budget: Cost) -> AdversaryAction {
        AdversaryAction::IDLE
    }

    fn purge_retention(&mut self, _view: &DefenseView, _cap: u64, _budget: Cost) -> u64 {
        0
    }

    fn periodic_retention(&mut self, _view: &DefenseView, _c: Cost, _budget: Cost) -> u64 {
        0
    }
}

/// The paper's Figure-8/10 adversary: spends its entire budget on entrance
/// challenges, joining Sybil IDs as fast as affordable, evenly over time.
/// It abandons Sybil IDs at purges ("we assume that the adversary only
/// solves RB challenges to add IDs to the system", Section 10.1).
#[derive(Clone, Copy, Debug)]
pub struct BudgetJoiner {
    /// Budget accrual rate `T` (used to compute the next affordable instant).
    rate: f64,
    /// Cached [`wakeup_step`] (`∞` when idle).
    step: f64,
}

impl BudgetJoiner {
    /// Creates a joiner for spend rate `rate` (may be 0, which idles).
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be non-negative");
        BudgetJoiner { rate, step: wakeup_step(rate, 0.01, 0.5) }
    }

    /// Overrides the wakeup step bounds (testing/precision control).
    pub fn with_steps(mut self, min_step: f64, max_step: f64) -> Self {
        self.step = wakeup_step(self.rate, min_step, max_step);
        self
    }
}

impl Adversary for BudgetJoiner {
    fn name(&self) -> String {
        format!("budget-joiner(T={})", self.rate)
    }

    fn needs_quote(&self) -> bool {
        false
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        next_wakeup_at(self.step, now)
    }

    fn act(&mut self, _view: &DefenseView, budget: Cost) -> AdversaryAction {
        AdversaryAction { join_budget: budget, max_joins: u64::MAX, departs: 0 }
    }

    fn purge_retention(&mut self, _view: &DefenseView, _cap: u64, _budget: Cost) -> u64 {
        0
    }

    fn periodic_retention(&mut self, view: &DefenseView, cost_per_id: Cost, budget: Cost) -> u64 {
        // Keep as many Sybil IDs alive as the periodic budget sustains; any
        // leftover next wakeup goes to new joins.
        if cost_per_id.is_zero() {
            view.n_bad
        } else {
            ((budget.value() / cost_per_id.value()) as u64).min(view.n_bad)
        }
    }
}

/// Maintains a target fraction of Sybil members (used for the GoodJEst
/// robustness experiments, Figure 9: "different fractions of bad IDs that
/// persist in the system"), while optionally injecting extra IDs at rate `T`.
#[derive(Clone, Copy, Debug)]
pub struct FractionKeeper {
    target_fraction: f64,
    rate: f64,
    step: f64,
}

impl FractionKeeper {
    /// Keeps Sybil membership at `target_fraction` of the system, topping up
    /// as needed, with additional injection funded at rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `target_fraction` is not in `[0, 1)`.
    pub fn new(target_fraction: f64, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&target_fraction), "fraction must be in [0,1)");
        assert!(rate >= 0.0 && rate.is_finite());
        FractionKeeper { target_fraction, rate, step: 1.0 }
    }

    fn target_bad(&self, n_members: u64, n_bad: u64) -> u64 {
        if self.target_fraction <= 0.0 {
            return 0;
        }
        // Solve b / (g + b) = f for the current good population g. Around
        // purges the view can be assembled mid-update and transiently
        // report more Sybil IDs than total members; treat that as zero
        // good IDs rather than underflowing.
        let good = n_members.saturating_sub(n_bad);
        ((self.target_fraction / (1.0 - self.target_fraction)) * good as f64).round() as u64
    }
}

impl Adversary for FractionKeeper {
    fn name(&self) -> String {
        format!("fraction-keeper(f={}, T={})", self.target_fraction, self.rate)
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        Some(now + self.step)
    }

    fn act(&mut self, view: &DefenseView, budget: Cost) -> AdversaryAction {
        let target = self.target_bad(view.n_members, view.n_bad);
        let deficit = target.saturating_sub(view.n_bad);
        // Top-ups to hold the fraction are assumed funded (the experiment
        // *fixes* the persistent fraction); the spend-rate budget additionally
        // injects as many as it affords.
        let top_up_cost = Cost(deficit as f64 * view.quote.value().max(1.0));
        AdversaryAction {
            join_budget: top_up_cost + budget,
            max_joins: deficit.max(if self.rate > 0.0 { u64::MAX } else { 0 }),
            departs: view.n_bad.saturating_sub(target),
        }
    }

    fn purge_retention(&mut self, view: &DefenseView, cap: u64, _budget: Cost) -> u64 {
        self.target_bad(view.n_members, view.n_bad).min(view.n_bad).min(cap)
    }

    fn periodic_retention(&mut self, view: &DefenseView, _c: Cost, _budget: Cost) -> u64 {
        self.target_bad(view.n_members, view.n_bad).min(view.n_bad)
    }
}

/// Saves its budget and releases it in periodic bursts (stress-tests the
/// β-burstiness handling and the entrance-cost escalation).
#[derive(Clone, Copy, Debug)]
pub struct BurstJoiner {
    period: f64,
    rate: f64,
}

impl BurstJoiner {
    /// Bursts all accumulated budget every `period` seconds.
    pub fn new(rate: f64, period: f64) -> Self {
        assert!(period > 0.0 && rate >= 0.0);
        BurstJoiner { period, rate }
    }
}

impl Adversary for BurstJoiner {
    fn name(&self) -> String {
        format!("burst-joiner(T={}, every {}s)", self.rate, self.period)
    }

    fn needs_quote(&self) -> bool {
        false
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        if self.rate == 0.0 {
            None
        } else {
            Some(now + self.period)
        }
    }

    fn act(&mut self, _view: &DefenseView, budget: Cost) -> AdversaryAction {
        AdversaryAction { join_budget: budget, max_joins: u64::MAX, departs: 0 }
    }

    fn purge_retention(&mut self, _view: &DefenseView, _cap: u64, _budget: Cost) -> u64 {
        0
    }

    fn periodic_retention(&mut self, _view: &DefenseView, _c: Cost, _budget: Cost) -> u64 {
        0
    }
}

/// Joins cheaply and immediately departs, churning the join/departure
/// counters to force frequent purges without holding membership.
///
/// This is precisely the behaviour Heuristic 2 (symmetric-difference purge
/// triggering, Section 10.3) is designed to neutralize.
#[derive(Clone, Copy, Debug)]
pub struct ChurnForcer {
    rate: f64,
    step: f64,
}

impl ChurnForcer {
    /// Creates a churn-forcer funded at `rate`.
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite());
        ChurnForcer { rate, step: 0.05 }
    }
}

impl Adversary for ChurnForcer {
    fn name(&self) -> String {
        format!("churn-forcer(T={})", self.rate)
    }

    fn needs_quote(&self) -> bool {
        false
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        if self.rate == 0.0 {
            None
        } else {
            Some(now + self.step)
        }
    }

    fn act(&mut self, view: &DefenseView, budget: Cost) -> AdversaryAction {
        // Depart everything joined so far, then re-join with the full budget:
        // each join+depart pair advances the iteration counter by 2 while the
        // symmetric difference stays flat.
        AdversaryAction { join_budget: budget, max_joins: u64::MAX, departs: view.n_bad }
    }

    fn purge_retention(&mut self, _view: &DefenseView, _cap: u64, _budget: Cost) -> u64 {
        0
    }

    fn periodic_retention(&mut self, _view: &DefenseView, _c: Cost, _budget: Cost) -> u64 {
        0
    }
}

/// Spends on entrance like [`BudgetJoiner`] but also pays to retain the
/// maximum κ-fraction at every purge — the worst case for the Lemma 9
/// invariant (bad fraction < 3κ).
#[derive(Clone, Copy, Debug)]
pub struct PurgeSurvivor {
    rate: f64,
    /// Cached [`wakeup_step`], shared with [`BudgetJoiner`] (the old form
    /// recomputed `min_step.max(1/rate).min(0.5)` on every wakeup).
    step: f64,
}

impl PurgeSurvivor {
    /// Creates a purge-surviving adversary funded at `rate`.
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite());
        PurgeSurvivor { rate, step: wakeup_step(rate, 0.01, 0.5) }
    }

    /// Overrides the wakeup step bounds (testing/precision control).
    pub fn with_steps(mut self, min_step: f64, max_step: f64) -> Self {
        self.step = wakeup_step(self.rate, min_step, max_step);
        self
    }
}

impl Adversary for PurgeSurvivor {
    fn name(&self) -> String {
        format!("purge-survivor(T={})", self.rate)
    }

    fn needs_quote(&self) -> bool {
        false
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        next_wakeup_at(self.step, now)
    }

    fn act(&mut self, _view: &DefenseView, budget: Cost) -> AdversaryAction {
        // Reserve nothing: the engine allows purge retention to draw from the
        // same accrued budget at purge time.
        AdversaryAction { join_budget: budget, max_joins: u64::MAX, departs: 0 }
    }

    fn purge_retention(&mut self, view: &DefenseView, cap: u64, budget: Cost) -> u64 {
        cap.min(view.n_bad).min(budget.value() as u64)
    }

    fn periodic_retention(&mut self, view: &DefenseView, cost_per_id: Cost, budget: Cost) -> u64 {
        if cost_per_id.is_zero() {
            view.n_bad
        } else {
            ((budget.value() / cost_per_id.value()) as u64).min(view.n_bad)
        }
    }
}

/// Registry name for [`NullAdversary`].
pub const STRATEGY_NONE: &str = "none";
/// Registry name for [`BudgetJoiner`].
pub const STRATEGY_BUDGET: &str = "budget";
/// Registry name for [`BurstJoiner`].
pub const STRATEGY_BURST: &str = "burst";
/// Registry name for [`ChurnForcer`].
pub const STRATEGY_CHURN_FORCE: &str = "churn-force";
/// Registry name for [`PurgeSurvivor`].
pub const STRATEGY_PURGE_SURVIVE: &str = "purge-survive";
/// Registry name for [`FractionKeeper`].
pub const STRATEGY_FRACTION_KEEP: &str = "fraction-keep";

/// Every name [`build_strategy`] accepts, in canonical roster order.
///
/// These are the labels experiment specs put on a `strategy` axis
/// (`axis strategy = str:budget,burst,churn-force,purge-survive`); the
/// experiment driver resolves each label back through the registry.
pub const STRATEGY_NAMES: [&str; 6] = [
    STRATEGY_NONE,
    STRATEGY_BUDGET,
    STRATEGY_BURST,
    STRATEGY_CHURN_FORCE,
    STRATEGY_PURGE_SURVIVE,
    STRATEGY_FRACTION_KEEP,
];

/// Parameters a registry-constructed strategy may consume.
///
/// One flat parameter struct instead of per-strategy types: an experiment
/// grid sweeps *names* along an axis and holds the parameters fixed per
/// cell, so every constructor must accept the same input. A strategy reads
/// the fields it cares about and ignores the rest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrategyParams {
    /// Budget accrual rate `T` (every funded strategy).
    pub rate: f64,
    /// Seconds between bursts (`burst` only).
    pub burst_period: f64,
    /// Persistent Sybil fraction to hold (`fraction-keep` only).
    pub target_fraction: f64,
    /// Seed reserved for stochastic strategies. None of the current
    /// strategies draw randomness, but the registry contract carries it so
    /// a future randomized strategy stays a pure function of
    /// `(name, params)` — drivers derive it per cell and trial.
    pub seed: u64,
}

impl StrategyParams {
    /// Params for spend rate `rate` with the canonical defaults the
    /// invariant experiments use: 60 s burst period (the E6 saver cadence),
    /// no persistent fraction, seed 0.
    pub fn rate(rate: f64) -> StrategyParams {
        StrategyParams { rate, burst_period: 60.0, target_fraction: 0.0, seed: 0 }
    }

    /// Sets the burst period.
    pub fn with_burst_period(mut self, period: f64) -> StrategyParams {
        self.burst_period = period;
        self
    }

    /// Sets the persistent target fraction.
    pub fn with_target_fraction(mut self, fraction: f64) -> StrategyParams {
        self.target_fraction = fraction;
        self
    }

    /// Sets the strategy seed.
    pub fn with_seed(mut self, seed: u64) -> StrategyParams {
        self.seed = seed;
        self
    }
}

/// Constructs the strategy registered under `name`, boxed for the generic
/// engine (which accepts `Box<dyn Adversary>` directly).
///
/// This is the resolution step behind a spec's `strategy` axis: the axis
/// carries registry names as plain labels, and the experiment driver calls
/// this per cell with the cell's parameters. Unknown names report the full
/// roster so a typo in a spec fails loudly and actionably.
///
/// # Errors
///
/// Returns an error for a name outside [`STRATEGY_NAMES`], or parameters
/// the strategy's constructor rejects (negative rate, fraction outside
/// `[0, 1)`, non-positive burst period).
pub fn build_strategy(name: &str, params: &StrategyParams) -> Result<Box<dyn Adversary>, String> {
    let check = |ok: bool, why: &str| -> Result<(), String> {
        if ok {
            Ok(())
        } else {
            Err(format!("strategy {name:?}: {why} (params: {params:?})"))
        }
    };
    check(params.rate >= 0.0 && params.rate.is_finite(), "rate must be finite and non-negative")?;
    Ok(match name {
        STRATEGY_NONE => Box::new(NullAdversary),
        STRATEGY_BUDGET => Box::new(BudgetJoiner::new(params.rate)),
        STRATEGY_BURST => {
            check(
                params.burst_period > 0.0 && params.burst_period.is_finite(),
                "burst period must be positive and finite",
            )?;
            Box::new(BurstJoiner::new(params.rate, params.burst_period))
        }
        STRATEGY_CHURN_FORCE => Box::new(ChurnForcer::new(params.rate)),
        STRATEGY_PURGE_SURVIVE => Box::new(PurgeSurvivor::new(params.rate)),
        STRATEGY_FRACTION_KEEP => {
            check(
                (0.0..1.0).contains(&params.target_fraction),
                "target fraction must be in [0, 1)",
            )?;
            Box::new(FractionKeeper::new(params.target_fraction, params.rate))
        }
        other => {
            return Err(format!(
                "unknown adversary strategy {other:?} (registered: {})",
                STRATEGY_NAMES.join(", ")
            ))
        }
    })
}

/// Canonical fingerprint of a `(name, params)` pair, for folding into an
/// experiment store's configuration context.
///
/// Injective: registry names contain no `(`, and the parameter suffix has
/// a fixed shape with floats rendered as bit patterns, so two distinct
/// `(name, params)` pairs can never fingerprint identically — a store
/// keyed on this can never silently resume cells produced under different
/// adversary parameters.
pub fn strategy_fingerprint(name: &str, params: &StrategyParams) -> String {
    format!(
        "{name}(rate=0x{:016x}, burst_period=0x{:016x}, target_fraction=0x{:016x}, seed={})",
        params.rate.to_bits(),
        params.burst_period.to_bits(),
        params.target_fraction.to_bits(),
        params.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n_members: u64, n_bad: u64) -> DefenseView {
        DefenseView { now: Time(10.0), n_members, n_bad, quote: Cost(1.0) }
    }

    #[test]
    fn null_adversary_is_idle() {
        let mut a = NullAdversary;
        assert_eq!(a.next_wakeup(Time(0.0)), None);
        assert_eq!(a.act(&view(10, 0), Cost(100.0)), AdversaryAction::IDLE);
        assert_eq!(a.purge_retention(&view(10, 5), 3, Cost(100.0)), 0);
    }

    #[test]
    fn budget_joiner_spends_everything() {
        let mut a = BudgetJoiner::new(100.0);
        let act = a.act(&view(10, 0), Cost(42.0));
        assert_eq!(act.join_budget, Cost(42.0));
        assert_eq!(act.departs, 0);
        assert_eq!(a.purge_retention(&view(10, 5), 3, Cost(42.0)), 0);
        assert!(a.next_wakeup(Time(0.0)).unwrap() > Time(0.0));
        assert_eq!(BudgetJoiner::new(0.0).next_wakeup(Time(0.0)), None);
    }

    #[test]
    fn fraction_keeper_targets_fraction() {
        let a = FractionKeeper::new(0.2, 0.0);
        // 80 good, target f = 0.2 -> bad = 20.
        assert_eq!(a.target_bad(80, 0), 20);
        assert_eq!(a.target_bad(100, 20), 20);
        let mut a = FractionKeeper::new(0.2, 0.0);
        let act = a.act(&view(100, 20), Cost::ZERO);
        assert_eq!(act.departs, 0);
        // Over target: departs the excess.
        let act = a.act(&view(100, 50), Cost::ZERO);
        assert_eq!(act.departs, 50 - a.target_bad(100, 50));
    }

    #[test]
    fn purge_survivor_retains_up_to_cap_and_budget() {
        let mut a = PurgeSurvivor::new(10.0);
        assert_eq!(a.purge_retention(&view(100, 50), 20, Cost(100.0)), 20);
        assert_eq!(a.purge_retention(&view(100, 50), 20, Cost(5.0)), 5);
        assert_eq!(a.purge_retention(&view(100, 3), 20, Cost(100.0)), 3);
    }

    #[test]
    fn churn_forcer_departs_all_then_rejoins() {
        let mut a = ChurnForcer::new(5.0);
        let act = a.act(&view(100, 7), Cost(9.0));
        assert_eq!(act.departs, 7);
        assert_eq!(act.join_budget, Cost(9.0));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn fraction_keeper_rejects_bad_fraction() {
        let _ = FractionKeeper::new(1.0, 0.0);
    }

    /// Regression: `n_members - n_bad` underflowed (debug-build panic,
    /// release-build garbage target) when a mid-purge view transiently
    /// reported more Sybil IDs than members, and was computed even on the
    /// `target_fraction <= 0` early-return path.
    #[test]
    fn fraction_keeper_survives_bad_exceeding_members() {
        let a = FractionKeeper::new(0.2, 0.0);
        // More bad than members: zero good IDs, so the target is zero.
        assert_eq!(a.target_bad(5, 9), 0);
        let mut a = FractionKeeper::new(0.2, 0.0);
        let act = a.act(&view(5, 9), Cost::ZERO);
        assert_eq!(act.departs, 9, "all Sybil IDs are over target");
        assert_eq!(a.purge_retention(&view(5, 9), 3, Cost::ZERO), 0);
        // The zero-fraction early return must not touch the subtraction.
        let zero = FractionKeeper::new(0.0, 0.0);
        assert_eq!(zero.target_bad(5, 9), 0);
    }

    #[test]
    fn purge_survivor_step_is_cached_and_matches_budget_joiner() {
        // The cached step must equal the formula the old per-wakeup
        // recomputation used: clamp(1/rate, 0.01, 0.5).
        for rate in [0.5f64, 10.0, 1_000.0, 1e6] {
            let expected = (1.0 / rate).clamp(0.01, 0.5);
            let now = Time(3.0);
            let s = PurgeSurvivor::new(rate).next_wakeup(now).unwrap();
            assert_eq!(s.0.to_bits(), (now.0 + expected).to_bits(), "rate {rate}");
            let b = BudgetJoiner::new(rate).next_wakeup(now).unwrap();
            assert_eq!(s.0.to_bits(), b.0.to_bits(), "rate {rate}: shared step diverged");
        }
        assert_eq!(PurgeSurvivor::new(0.0).next_wakeup(Time(0.0)), None);
        // with_steps overrides both bounds, as on BudgetJoiner.
        let wide = PurgeSurvivor::new(1.0).with_steps(2.0, 8.0);
        assert_eq!(wide.next_wakeup(Time(0.0)), Some(Time(2.0)));
    }

    #[test]
    fn registry_roundtrip_constructs_every_strategy() {
        let params = StrategyParams::rate(100.0).with_target_fraction(0.1);
        for name in STRATEGY_NAMES {
            let adv = build_strategy(name, &params)
                .unwrap_or_else(|e| panic!("registered strategy {name:?} failed to build: {e}"));
            assert!(!adv.name().is_empty());
            // The boxed forwarding impl must reach the concrete strategy.
            let mut adv = adv;
            let _ = adv.act(&view(100, 5), Cost(10.0));
            let _ = adv.next_wakeup(Time(1.0));
            let _ = adv.needs_quote();
            let _ = adv.purge_retention(&view(100, 5), 3, Cost(10.0));
            let _ = adv.periodic_retention(&view(100, 5), Cost(1.0), Cost(10.0));
        }
        let unknown = build_strategy("no-such-strategy", &params).err().unwrap();
        assert!(unknown.contains("purge-survive"), "{unknown}");
        // Parameter domain errors are reported per strategy.
        assert!(build_strategy(STRATEGY_BUDGET, &StrategyParams::rate(-1.0)).is_err());
        assert!(build_strategy(STRATEGY_BURST, &StrategyParams::rate(1.0).with_burst_period(0.0))
            .is_err());
        assert!(build_strategy(
            STRATEGY_FRACTION_KEEP,
            &StrategyParams::rate(1.0).with_target_fraction(1.0)
        )
        .is_err());
    }

    #[test]
    fn strategy_fingerprints_are_injective() {
        let mut seen = std::collections::BTreeMap::new();
        let params = [
            StrategyParams::rate(0.0),
            StrategyParams::rate(100.0),
            StrategyParams::rate(100.0).with_burst_period(30.0),
            StrategyParams::rate(100.0).with_target_fraction(0.25),
            StrategyParams::rate(100.0).with_seed(7),
            // -0.0 vs 0.0 rate: bit patterns differ, fingerprints must too.
            StrategyParams::rate(-0.0),
        ];
        for name in STRATEGY_NAMES {
            for p in &params {
                let fp = strategy_fingerprint(name, p);
                if let Some(prev) = seen.insert(fp.clone(), (name, *p)) {
                    panic!("{prev:?} and {:?} share fingerprint {fp}", (name, p));
                }
            }
        }
        assert_eq!(seen.len(), STRATEGY_NAMES.len() * params.len());
    }

    #[test]
    fn boxed_adversary_forwards_like_the_concrete_type() {
        let rate = 500.0;
        let mut concrete = BudgetJoiner::new(rate);
        let mut boxed: Box<dyn Adversary> = Box::new(BudgetJoiner::new(rate));
        assert_eq!(boxed.name(), concrete.name());
        assert_eq!(boxed.needs_quote(), concrete.needs_quote());
        assert_eq!(boxed.next_wakeup(Time(2.0)), concrete.next_wakeup(Time(2.0)));
        let v = view(50, 10);
        assert_eq!(boxed.act(&v, Cost(9.0)), concrete.act(&v, Cost(9.0)));
        assert_eq!(
            boxed.periodic_retention(&v, Cost(1.0), Cost(4.0)),
            concrete.periodic_retention(&v, Cost(1.0), Cost(4.0))
        );
    }
}
