//! Resource-burning cost accounting.
//!
//! The paper's experiments "assume a cost of `k` for solving a `k`-hard RB
//! challenge" (Section 10.1); the [`Cost`] newtype carries that unit. The
//! [`Ledger`] splits spending by who paid (good IDs vs the adversary) and
//! why (entrance, purge, periodic work), which is exactly the decomposition
//! the analysis in Section 9.2 performs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An amount of burned resource, in 1-hard-challenge units.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cost(pub f64);

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost(0.0);
    /// The cost of a single 1-hard challenge.
    pub const ONE: Cost = Cost(1.0);

    /// Raw value in 1-hard units.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// True if this cost is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for Cost {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}rb", self.0)
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sub for Cost {
    type Output = Cost;
    fn sub(self, rhs: Cost) -> Cost {
        Cost(self.0 - rhs.0)
    }
}

impl SubAssign for Cost {
    fn sub_assign(&mut self, rhs: Cost) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    fn mul(self, rhs: f64) -> Cost {
        Cost(self.0 * rhs)
    }
}

impl Div<f64> for Cost {
    type Output = Cost;
    fn div(self, rhs: f64) -> Cost {
        Cost(self.0 / rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |a, b| a + b)
    }
}

/// Why a cost was incurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Purpose {
    /// Entrance challenge solved to join the system.
    Entrance,
    /// 1-hard challenge solved during a purge to remain in the system.
    Purge,
    /// Periodic work (SybilControl neighbor tests, REMP recurring puzzles).
    Periodic,
}

/// Double-entry style ledger of resource burning.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Ledger {
    good_entrance: Cost,
    good_purge: Cost,
    good_periodic: Cost,
    adv_entrance: Cost,
    adv_purge: Cost,
    adv_periodic: Cost,
}

impl Ledger {
    /// A ledger with all balances zero.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Builds a ledger from per-purpose balances in `[Entrance, Purge,
    /// Periodic]` order — the seam through which the sharded fixed-point
    /// ledger materializes its final float report.
    pub(crate) fn from_parts(good: [Cost; 3], adv: [Cost; 3]) -> Ledger {
        Ledger {
            good_entrance: good[0],
            good_purge: good[1],
            good_periodic: good[2],
            adv_entrance: adv[0],
            adv_purge: adv[1],
            adv_periodic: adv[2],
        }
    }

    /// Records spending by good IDs.
    pub fn charge_good(&mut self, purpose: Purpose, amount: Cost) {
        debug_assert!(amount.value() >= 0.0, "negative charge");
        match purpose {
            Purpose::Entrance => self.good_entrance += amount,
            Purpose::Purge => self.good_purge += amount,
            Purpose::Periodic => self.good_periodic += amount,
        }
    }

    /// Records spending by the adversary.
    pub fn charge_adversary(&mut self, purpose: Purpose, amount: Cost) {
        debug_assert!(amount.value() >= 0.0, "negative charge");
        match purpose {
            Purpose::Entrance => self.adv_entrance += amount,
            Purpose::Purge => self.adv_purge += amount,
            Purpose::Periodic => self.adv_periodic += amount,
        }
    }

    /// Total burned by good IDs across all purposes.
    pub fn good_total(&self) -> Cost {
        self.good_entrance + self.good_purge + self.good_periodic
    }

    /// Total burned by the adversary across all purposes.
    pub fn adversary_total(&self) -> Cost {
        self.adv_entrance + self.adv_purge + self.adv_periodic
    }

    /// Good spending on entrance challenges.
    pub fn good_entrance(&self) -> Cost {
        self.good_entrance
    }

    /// Good spending on purge challenges.
    pub fn good_purge(&self) -> Cost {
        self.good_purge
    }

    /// Good spending on periodic work.
    pub fn good_periodic(&self) -> Cost {
        self.good_periodic
    }

    /// Adversary spending on entrance challenges.
    pub fn adversary_entrance(&self) -> Cost {
        self.adv_entrance
    }

    /// Adversary spending on purge retention.
    pub fn adversary_purge(&self) -> Cost {
        self.adv_purge
    }

    /// Adversary spending on periodic retention.
    pub fn adversary_periodic(&self) -> Cost {
        self.adv_periodic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic() {
        let c = Cost(2.0) + Cost(3.0);
        assert_eq!(c, Cost(5.0));
        assert_eq!(c - Cost(1.0), Cost(4.0));
        assert_eq!(c * 2.0, Cost(10.0));
        assert_eq!(c / 5.0, Cost(1.0));
        assert_eq!(vec![Cost(1.0), Cost(2.0)].into_iter().sum::<Cost>(), Cost(3.0));
        assert!(Cost::ZERO.is_zero());
        assert!(!Cost::ONE.is_zero());
        assert!(Cost(1.0) < Cost(2.0));
    }

    #[test]
    fn ledger_splits_by_payer_and_purpose() {
        let mut l = Ledger::new();
        l.charge_good(Purpose::Entrance, Cost(2.0));
        l.charge_good(Purpose::Purge, Cost(3.0));
        l.charge_good(Purpose::Periodic, Cost(5.0));
        l.charge_adversary(Purpose::Entrance, Cost(7.0));
        l.charge_adversary(Purpose::Purge, Cost(11.0));
        l.charge_adversary(Purpose::Periodic, Cost(13.0));
        assert_eq!(l.good_total(), Cost(10.0));
        assert_eq!(l.adversary_total(), Cost(31.0));
        assert_eq!(l.good_entrance(), Cost(2.0));
        assert_eq!(l.good_purge(), Cost(3.0));
        assert_eq!(l.good_periodic(), Cost(5.0));
        assert_eq!(l.adversary_entrance(), Cost(7.0));
        assert_eq!(l.adversary_purge(), Cost(11.0));
        assert_eq!(l.adversary_periodic(), Cost(13.0));
    }

    #[test]
    fn display() {
        assert_eq!(Cost(1.5).to_string(), "1.50rb");
    }
}
