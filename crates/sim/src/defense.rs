//! The interface every simulated Sybil defense implements.
//!
//! A defense is a state machine fed the same event stream the paper's server
//! observes: join requests, departures, and the passage of time. The engine
//! (not the defense) knows ground truth; good IDs are tracked individually
//! (their sessions come from a churn trace) while Sybil IDs — which are
//! exchangeable, being controlled by a single adversary — are tracked in
//! aggregate batches. Defense *logic* may only depend on quantities the real
//! algorithm could observe: counts of joins/departures, membership size,
//! event times, and (for classifier-gated variants) classifier verdicts.

use crate::cost::Cost;
use crate::time::Time;

/// Outcome of a single (good) join attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Admission {
    /// The joiner solved the entrance challenge and is now a member.
    Admitted {
        /// Hardness of the entrance challenge that was solved.
        cost: Cost,
    },
    /// The joiner paid `cost` but was refused entry (classifier gate).
    Refused {
        /// Resource burned by the refused joiner (zero if refused pre-challenge).
        cost: Cost,
    },
}

impl Admission {
    /// Resource burned in this attempt, regardless of outcome.
    pub fn cost(&self) -> Cost {
        match *self {
            Admission::Admitted { cost } | Admission::Refused { cost } => cost,
        }
    }

    /// True if the attempt resulted in membership.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted { .. })
    }
}

/// Why a batched Sybil join stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchStop {
    /// The remaining budget cannot afford the next attempt.
    Budget,
    /// The defense's purge condition triggered mid-batch; the engine must
    /// resolve the purge before more joins are accepted.
    PurgeTriggered,
    /// The attempt limit was reached.
    MaxAttempts,
}

/// Outcome of a batched Sybil join attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchAdmission {
    /// Number of Sybil IDs actually admitted to membership.
    pub admitted: u64,
    /// Attempts consumed, including those refused by a classifier gate.
    pub attempts: u64,
    /// Total resource burned by the adversary in this batch.
    pub spent: Cost,
    /// Why the batch ended.
    pub stop: BatchStop,
}

/// Result of executing a purge (paper Figure 4, Step 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PurgeReport {
    /// Total cost charged to good IDs (each solves a 1-hard challenge).
    pub good_cost: Cost,
    /// Total cost charged to the adversary for retained Sybil IDs.
    pub adv_cost: Cost,
    /// Number of Sybil IDs removed by the purge.
    pub bad_removed: u64,
    /// True if the purge was skipped by a heuristic (Heuristic 3).
    pub skipped: bool,
    /// Number of good IDs that paid a share of `good_cost` (0 when the
    /// sweep charged nobody). The sharded ledger uses this to split the
    /// aggregate into exact per-shard quanta.
    pub good_charged: u64,
}

/// Result of a periodic charge (SybilControl tests, REMP recurring puzzles).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeriodicReport {
    /// Total cost charged to good IDs this period.
    pub good_cost: Cost,
    /// Number of Sybil IDs dropped for non-payment.
    pub bad_dropped: u64,
    /// Number of good IDs that paid a share of `good_cost` (0 when the
    /// period charged nobody); see [`PurgeReport::good_charged`].
    pub good_charged: u64,
}

/// Events a defense can log for post-run analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DefenseEvent {
    /// The join-rate estimator produced a new estimate over `[start, end)`.
    EstimateUpdated {
        /// Interval start (previous update time).
        start: Time,
        /// Interval end (this update time).
        end: Time,
        /// The new estimate of the good join rate, in IDs/second.
        estimate: f64,
    },
    /// A purge completed, with the membership size after it.
    PurgeCompleted {
        /// When the purge resolved.
        at: Time,
        /// Members remaining after the purge.
        members_after: u64,
    },
    /// A purge was skipped by Heuristic 3.
    PurgeSkipped {
        /// When the skip decision was made.
        at: Time,
    },
}

/// A simulated Sybil defense.
///
/// Methods that mutate accounting are paired with their ground-truth tag
/// (`good_*` vs `bad_*`) purely so the engine can route charges to the right
/// side of the ledger. Implementations must not let the tag influence any
/// decision the real algorithm could not make — classifier-gated defenses
/// receive their noisy signal through an internal classifier instead.
pub trait Defense {
    /// Human-readable name used in reports (e.g. `"ERGO"`, `"CCOM"`).
    fn name(&self) -> String;

    /// Initializes membership at time `now` with `n_good` good IDs and
    /// `n_bad` Sybil IDs, all of which solved a 1-hard initialization
    /// challenge. Returns the per-ID initialization cost (typically 1).
    fn init(&mut self, now: Time, n_good: u64, n_bad: u64) -> Cost;

    /// The current entrance-challenge hardness a joiner would be quoted.
    fn quote(&self, now: Time) -> Cost;

    /// A good ID requests to join at `now`.
    fn good_join(&mut self, now: Time) -> Admission;

    /// A good member that joined at `joined_at` departs.
    ///
    /// The join time is how the simulation communicates *which* ID departed
    /// without exposing identities: the algorithms only ever need an ID's
    /// age class (old/new relative to interval starts).
    fn good_depart(&mut self, now: Time, joined_at: Time);

    /// The adversary attempts up to `max_attempts` joins, spending at most
    /// `budget`. The defense admits attempts at the quoted (and possibly
    /// escalating) entrance cost until budget, the attempt limit, or its
    /// purge condition stops the batch.
    fn bad_join_batch(&mut self, now: Time, budget: Cost, max_attempts: u64) -> BatchAdmission;

    /// The adversary voluntarily departs up to `n` of its Sybil IDs
    /// (most recently joined first). Returns how many actually departed.
    fn bad_depart(&mut self, now: Time, n: u64) -> u64;

    /// True if the defense's purge condition currently holds.
    fn purge_due(&self, now: Time) -> bool;

    /// Executes a purge: every good member solves a 1-hard challenge; the
    /// adversary retains `retain_bad` Sybil IDs by paying 1 each (the engine
    /// has already enforced the `κ`-fraction cap and adversary budget).
    fn purge(&mut self, now: Time, retain_bad: u64) -> PurgeReport;

    /// The next time periodic work is due, if this defense does any.
    fn next_periodic(&self) -> Option<Time>;

    /// Cost each member must pay at the upcoming periodic charge.
    fn periodic_cost_per_member(&self, now: Time) -> Cost;

    /// Applies the periodic charge: good members pay; `bad_retained` Sybil
    /// IDs pay (adversary-funded) and the rest are dropped for non-payment.
    fn periodic_apply(&mut self, now: Time, bad_retained: u64) -> PeriodicReport;

    /// Current membership size (good + bad).
    fn n_members(&self) -> u64;

    /// Ground-truth count of Sybil members (engine bookkeeping only).
    fn n_bad(&self) -> u64;

    /// Ground-truth count of good members (engine bookkeeping only).
    fn n_good(&self) -> u64 {
        self.n_members() - self.n_bad()
    }

    /// Drains the defense's event log (estimator updates, purges, skips)
    /// into `out`, appending in the same order [`Defense::drain_events`]
    /// returns. The engine owns one recycled buffer and passes it here so
    /// the steady-state hot path allocates nothing; implementations should
    /// swap or append without leaving a copy behind.
    fn drain_events_into(&mut self, out: &mut Vec<DefenseEvent>);

    /// Drains the defense's event log as a fresh vector.
    ///
    /// Convenience wrapper over [`Defense::drain_events_into`] — allocates
    /// one `Vec` per call, so hot paths should prefer the `_into` form.
    fn drain_events(&mut self) -> Vec<DefenseEvent> {
        let mut out = Vec::new();
        self.drain_events_into(&mut out);
        out
    }
}

impl Defense for Box<dyn Defense> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn init(&mut self, now: Time, n_good: u64, n_bad: u64) -> Cost {
        (**self).init(now, n_good, n_bad)
    }
    fn quote(&self, now: Time) -> Cost {
        (**self).quote(now)
    }
    fn good_join(&mut self, now: Time) -> Admission {
        (**self).good_join(now)
    }
    fn good_depart(&mut self, now: Time, joined_at: Time) {
        (**self).good_depart(now, joined_at)
    }
    fn bad_join_batch(&mut self, now: Time, budget: Cost, max_attempts: u64) -> BatchAdmission {
        (**self).bad_join_batch(now, budget, max_attempts)
    }
    fn bad_depart(&mut self, now: Time, n: u64) -> u64 {
        (**self).bad_depart(now, n)
    }
    fn purge_due(&self, now: Time) -> bool {
        (**self).purge_due(now)
    }
    fn purge(&mut self, now: Time, retain_bad: u64) -> PurgeReport {
        (**self).purge(now, retain_bad)
    }
    fn next_periodic(&self) -> Option<Time> {
        (**self).next_periodic()
    }
    fn periodic_cost_per_member(&self, now: Time) -> Cost {
        (**self).periodic_cost_per_member(now)
    }
    fn periodic_apply(&mut self, now: Time, bad_retained: u64) -> PeriodicReport {
        (**self).periodic_apply(now, bad_retained)
    }
    fn n_members(&self) -> u64 {
        (**self).n_members()
    }
    fn n_bad(&self) -> u64 {
        (**self).n_bad()
    }
    fn drain_events_into(&mut self, out: &mut Vec<DefenseEvent>) {
        (**self).drain_events_into(out)
    }
    fn drain_events(&mut self) -> Vec<DefenseEvent> {
        (**self).drain_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_accessors() {
        let a = Admission::Admitted { cost: Cost(3.0) };
        let r = Admission::Refused { cost: Cost(1.0) };
        assert!(a.is_admitted());
        assert!(!r.is_admitted());
        assert_eq!(a.cost(), Cost(3.0));
        assert_eq!(r.cost(), Cost(1.0));
    }
}
