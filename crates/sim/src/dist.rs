//! Probability distributions, implemented from scratch over uniform bits.
//!
//! The churn workloads in the paper's evaluation are driven by Weibull,
//! exponential, and Poisson models (Section 10 datasets). Only the uniform
//! source comes from the `rand` crate; all transforms live here so the
//! repository is self-contained and the samplers are independently testable.

use rand::Rng;

/// A continuous distribution over non-negative reals.
///
/// All samplers use inverse-transform sampling from a single uniform draw,
/// which keeps them deterministic given the RNG stream.
pub trait Sample {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The distribution mean, used for steady-state sizing of churn models.
    fn mean(&self) -> f64;

    /// Fills `out` with independent samples.
    ///
    /// Guaranteed to consume the RNG stream exactly as `out.len()` calls
    /// to [`sample`](Self::sample) would — workload generation is seeded
    /// and fingerprinted, so batching must never perturb the draws.
    /// Implementations override this to split the work into a uniform
    /// block draw plus a tight transform-only loop, which is markedly
    /// faster for bulk cold-workload generation than interleaving RNG
    /// state updates with `ln`/`powf` calls one sample at a time.
    fn sample_fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }
}

/// Draws a uniform in the open interval (0, 1), never exactly 0 or 1,
/// so `ln(u)` is always finite.
fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// Fills `out` with open-unit uniforms, element by element in order — the
/// exact RNG consumption of repeated [`open_unit`] calls (including the
/// rejection re-draws), so batched samplers stay stream-identical to
/// their one-at-a-time counterparts.
pub fn fill_open_unit<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for slot in out.iter_mut() {
        *slot = open_unit(rng);
    }
}

/// Exponential distribution with the given mean (`rate = 1/mean`).
///
/// Used for Gnutella session times (mean 2.3 hours, Section 10).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive and finite");
        Exponential { mean }
    }

    /// Creates an exponential distribution with the given rate (events/sec).
    pub fn with_rate(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive and finite");
        Exponential { mean: 1.0 / rate }
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -self.mean * open_unit(rng).ln()
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn sample_fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        fill_open_unit(rng, out);
        for u in out.iter_mut() {
            *u = -self.mean * u.ln();
        }
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// Used for BitTorrent sessions (shape 0.59, scale 41.0) and Ethereum
/// sessions (shape 0.52, scale 9.8), per the paper's Section 10 datasets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Panics
    ///
    /// Panics if `shape` or `scale` is not positive and finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "shape must be positive and finite");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive and finite");
        Weibull { shape, scale }
    }

    /// The shape parameter `k`. Shapes below 1 give heavy-tailed sessions.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `lambda`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Sample for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: lambda * (-ln U)^(1/k).
        self.scale * (-open_unit(rng).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }

    fn sample_fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        fill_open_unit(rng, out);
        let inv_shape = 1.0 / self.shape;
        for u in out.iter_mut() {
            *u = self.scale * (-u.ln()).powf(inv_shape);
        }
    }
}

/// Pareto (type I) distribution with minimum `x_min` and tail index `alpha`.
///
/// Provided for heavy-tailed session-time experiments beyond the paper's
/// four datasets (e.g. Kazaa-like workloads mentioned in Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics if `x_min` or `alpha` is not positive and finite.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && x_min.is_finite(), "x_min must be positive and finite");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive and finite");
        Pareto { x_min, alpha }
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.x_min / open_unit(rng).powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.x_min / (self.alpha - 1.0)
        }
    }

    fn sample_fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        fill_open_unit(rng, out);
        // Same expression shape as `sample` (divide, not multiply by the
        // negated power): the batch must be bit-identical, not just
        // mathematically equal.
        let inv_alpha = 1.0 / self.alpha;
        for u in out.iter_mut() {
            *u = self.x_min / u.powf(inv_alpha);
        }
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu` and `sigma`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller using two uniforms; only one normal variate is consumed.
        let u1 = open_unit(rng);
        let u2 = open_unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Samples a Poisson-distributed count with the given mean, via Knuth's
/// product method for small means and a normal approximation above 30.
pub fn poisson_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 0.0 && mean.is_finite(), "mean must be non-negative and finite");
    if mean == 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut count = 0u64;
        let mut product = 1.0;
        loop {
            product *= open_unit(rng);
            if product <= limit {
                return count;
            }
            count += 1;
        }
    } else {
        // Normal approximation with continuity correction; adequate for the
        // bulk arrival counts used by the workload generators.
        let u1 = open_unit(rng);
        let u2 = open_unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let x = mean + mean.sqrt() * z + 0.5;
        if x < 0.0 {
            0
        } else {
            x as u64
        }
    }
}

/// The gamma function, via the Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~15 significant digits for positive arguments, which is what
/// [`Weibull::mean`] needs for steady-state churn sizing.
pub fn gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, as published (more digits than f64
    // keeps — harmless, and clearer than rounding them by hand).
    #![allow(clippy::excessive_precision)]
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (std::f64::consts::TAU).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean<D: Sample>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(3.0) - 2.0).abs() < 1e-10);
        assert!((gamma(4.0) - 6.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        assert!((gamma(1.5) - 0.886_226_925_452_758).abs() < 1e-10);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::with_mean(42.0);
        let m = sample_mean(&d, 200_000, 1);
        assert!((m - 42.0).abs() / 42.0 < 0.02, "sample mean {m}");
        assert_eq!(d.mean(), 42.0);
        assert!((Exponential::with_rate(0.5).mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weibull_mean_converges() {
        // BitTorrent parameters from the paper.
        let d = Weibull::new(0.59, 41.0);
        let analytic = d.mean();
        let m = sample_mean(&d, 400_000, 2);
        assert!((m - analytic).abs() / analytic < 0.03, "sample mean {m} vs analytic {analytic}");
        // Heavy-tailed shape <1 means mean > scale.
        assert!(analytic > 41.0);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(1.0, 10.0);
        assert!((w.mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pareto_mean() {
        let d = Pareto::new(1.0, 3.0);
        assert!((d.mean() - 1.5).abs() < 1e-12);
        let m = sample_mean(&d, 400_000, 3);
        assert!((m - 1.5).abs() < 0.05, "sample mean {m}");
        assert!(Pareto::new(1.0, 0.9).mean().is_infinite());
    }

    #[test]
    fn lognormal_mean() {
        let d = LogNormal::new(0.0, 0.5);
        let analytic = d.mean();
        let m = sample_mean(&d, 400_000, 4);
        assert!((m - analytic).abs() / analytic < 0.02, "sample mean {m}");
    }

    #[test]
    fn poisson_count_small_and_large_means() {
        let mut rng = StdRng::seed_from_u64(5);
        for mean in [0.5, 4.0, 50.0, 400.0] {
            let n = 40_000;
            let total: u64 = (0..n).map(|_| poisson_count(&mut rng, mean)).sum();
            let m = total as f64 / n as f64;
            assert!((m - mean).abs() / mean < 0.05, "poisson mean {mean}: sample {m}");
        }
        assert_eq!(poisson_count(&mut rng, 0.0), 0);
    }

    #[test]
    fn samples_are_non_negative() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = Weibull::new(0.52, 9.8);
        let e = Exponential::with_mean(1.0);
        for _ in 0..10_000 {
            assert!(w.sample(&mut rng) >= 0.0);
            assert!(e.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Weibull::new(0.59, 41.0);
        let a = sample_mean(&d, 100, 7);
        let b = sample_mean(&d, 100, 7);
        assert_eq!(a, b);
    }

    /// The batched fill must be bit-identical to one-at-a-time sampling —
    /// same values AND same RNG stream position afterwards. Workload
    /// fingerprints depend on it.
    #[test]
    fn sample_fill_is_bit_identical_to_sequential() {
        fn check<D: Sample>(d: &D, seed: u64) {
            let n = 1000;
            let mut seq_rng = StdRng::seed_from_u64(seed);
            let sequential: Vec<f64> = (0..n).map(|_| d.sample(&mut seq_rng)).collect();
            let mut fill_rng = StdRng::seed_from_u64(seed);
            let mut filled = vec![0.0; n];
            d.sample_fill(&mut fill_rng, &mut filled);
            assert_eq!(sequential, filled);
            // Stream positions agree after the batch.
            assert_eq!(seq_rng.next_u64(), fill_rng.next_u64());
        }
        check(&Weibull::new(0.59, 41.0), 11);
        check(&Weibull::new(0.52, 9.8), 12);
        check(&Exponential::with_mean(8280.0), 13);
        check(&Pareto::new(10.0, 2.5), 14);
        check(&LogNormal::new(3.0, 0.5), 15);
    }
}
