//! The discrete-event simulation engine.
//!
//! Mirrors the paper's experimental setup (Section 10.1): a defense is fed a
//! good-ID churn [`Workload`] while an [`Adversary`] with spend rate `T`
//! schedules Sybil joins, departures, purge survival, and periodic-test
//! retention. The engine owns ground truth, the cost ledger, and the
//! bad-fraction invariant tracking.
//!
//! The engine is generic over its [`WorkloadSource`]: the same loop replays
//! a resident [`Workload`] or a disk-backed
//! [`crate::workload_io::DiskWorkload`], and resident state is
//! O(active sessions) either way — the event queue streams, admission and
//! spend state live in a [`ShardedDefenseState`] (2-bit packed admission
//! slices plus fixed-point ledgers, one slice per workload shard), and the
//! disk stream holds two read buffers.
//!
//! # Example
//!
//! ```
//! use sybil_sim::adversary::NullAdversary;
//! use sybil_sim::engine::{SimConfig, Simulation};
//! use sybil_sim::testutil::UnitCostDefense;
//! use sybil_sim::time::Time;
//! use sybil_sim::workload::{Session, Workload};
//!
//! let workload = Workload::new(
//!     vec![Time(50.0); 10],
//!     vec![Session::new(Time(1.0), Time(20.0))],
//! );
//! let cfg = SimConfig { horizon: Time(100.0), ..SimConfig::default() };
//! let report = Simulation::new(cfg, UnitCostDefense::new(), NullAdversary, workload).run();
//! assert_eq!(report.good_joins_admitted, 1);
//! assert_eq!(report.final_bad, 0);
//! ```

use crate::adversary::{Adversary, DefenseView};
use crate::cost::{Cost, Purpose};
use crate::defense::{BatchStop, Defense, DefenseEvent};
use crate::queue::EventQueue;
use crate::report::{EstimateRecord, SimReport, TimelinePoint};
use crate::shard_state::ShardedDefenseState;
use crate::time::Time;
use crate::workload::{SessionIndex, StreamEvent, Workload, WorkloadSource, WorkloadStream};

/// Engine configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Simulated duration in seconds (paper: 10 000 s per data point).
    pub horizon: Time,
    /// Fraction of challenges the adversary can solve in one round; caps
    /// purge retention at `⌊κ·N⌋` (paper: κ = 1/18).
    pub kappa: f64,
    /// Adversary budget accrual rate `T` (resource units per second).
    pub adv_rate: f64,
    /// Sybil IDs present at initialization (used by the GoodJEst
    /// experiments to seed a persistent bad population).
    pub initial_bad: u64,
    /// Duration of a purge round; 0 resolves purges instantaneously, which
    /// is what the paper's simulations do.
    pub round_duration: f64,
    /// Record admitted good-ID join times in the report (needed to compute
    /// true per-interval join rates for the Figure 9 analysis).
    pub record_good_joins: bool,
    /// If `Some(dt)`, sample a [`TimelinePoint`] every `dt` seconds.
    pub timeline_resolution: Option<f64>,
    /// If `Some(cap)` (≥ 2), bound the recorded timeline at `cap` points:
    /// when full, every other point is dropped and the sampling interval
    /// doubles, so the series stays evenly spaced at a coarser
    /// resolution. Each halving is counted in
    /// [`SimReport::timeline_decimations`]. `None` records every sample
    /// (the pre-existing behavior).
    pub max_timeline_points: Option<usize>,
    /// If `Some(cap)`, record at most `cap` good join times; further
    /// admitted joins are counted in
    /// [`SimReport::good_join_times_dropped`] instead of recorded.
    /// `None` records all of them (the pre-existing behavior).
    pub max_good_join_times: Option<usize>,
    /// Upper bound on act/join/purge rounds within a single adversary
    /// wakeup. Each round either makes progress (joins or departures) or
    /// ends the turn, so well-behaved adversaries never get near this; it
    /// exists to bound a buggy or adversarially pathological strategy that
    /// keeps triggering instant purges. Hitting the bound is counted in
    /// [`SimReport::adversary_turn_truncations`] rather than silently
    /// swallowed.
    pub max_adversary_turn_rounds: u32,
    /// Upper bound on back-to-back instant purge rounds resolved at one
    /// event time. A purge can (in principle) leave the purge condition
    /// true again; this bound prevents live-lock. Hitting it is counted in
    /// [`SimReport::purge_cascade_truncations`].
    pub max_purge_cascade_rounds: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: Time(10_000.0),
            kappa: 1.0 / 18.0,
            adv_rate: 0.0,
            initial_bad: 0,
            round_duration: 0.0,
            record_good_joins: false,
            timeline_resolution: None,
            max_timeline_points: None,
            max_good_join_times: None,
            max_adversary_turn_rounds: 100_000,
            max_purge_cascade_rounds: 16,
        }
    }
}

/// Why a [`Simulation`] could not be constructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimBuildError {
    /// The workload holds more sessions than [`SessionIndex`] can address
    /// (event payloads pack the session index into 32 bits).
    TooManySessions {
        /// Sessions in the offending workload.
        sessions: u64,
    },
}

impl std::fmt::Display for SimBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimBuildError::TooManySessions { sessions } => write!(
                f,
                "workload has {sessions} sessions; the engine addresses at most {} \
                 (SessionIndex is 32-bit)",
                SessionIndex::MAX
            ),
        }
    }
}

impl std::error::Error for SimBuildError {}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Good arrival: index into the workload's sessions.
    GoodJoin(SessionIndex),
    /// Departure of an arrival session, carrying its join time so the
    /// workload record never needs to be re-read (the stream may have
    /// come from disk).
    GoodDepart(SessionIndex, Time),
    /// Departure of an ID present at t=0.
    InitialDepart,
    /// Adversary wakeup.
    AdvWake,
    /// Periodic defense work is due.
    Periodic,
    /// A purge round resolves.
    PurgeResolve,
    /// Timeline sampling tick.
    Sample,
}

/// What the merged run loop picked at one merge step: the head of the
/// external workload feed or the head of the internal queue.
enum MergedEvent {
    Workload(StreamEvent),
    Internal(Event),
}

/// A single simulation run binding a defense, an adversary, and a workload.
///
/// The workload is *not* loaded into the event queue up front. The
/// [`WorkloadStream`] yields sessions in join order, so the scheduler
/// keeps exactly one pending good join in the queue and feeds the next one
/// in when it pops; a session's departure is queued only once its join has
/// been processed, and initial departures stream the same way. The queue
/// therefore holds O(active sessions) entries instead of O(workload).
///
/// Determinism: each streamed event carries the exact sequence number an
/// eager scheduler would have assigned (see [`WorkloadStream`]), so
/// tie-breaking — and with it every simulation counter — is bit-identical
/// to eager scheduling.
pub struct Simulation<D, A, W: WorkloadSource = Workload> {
    cfg: SimConfig,
    defense: D,
    adversary: A,
    stream: W::Stream,
    initial_size: u64,
    queue: EventQueue<Event>,
    /// Departure `(time, seq)` of the session whose join is currently
    /// queued, if that departure falls within the horizon.
    pending_depart: Option<(Time, u64)>,
    budget: f64,
    last_budget_time: Time,
    /// Sharded defense state: per-shard admission slices, live counts,
    /// and spend ledgers, reduced deterministically at epoch boundaries.
    /// The shard count follows the workload source, so a sharded workload
    /// keeps each session's state with the shard that decodes it.
    state: ShardedDefenseState,
    purge_pending: bool,
    /// Current timeline sampling interval (doubles on decimation).
    timeline_dt: f64,
    // Invariant tracking.
    frac_integral: f64,
    last_frac: f64,
    last_frac_time: Time,
    max_bad_fraction: f64,
    // Counters (session-attributed counters live in `state`).
    bad_joins_admitted: u64,
    bad_join_attempts: u64,
    purges: u64,
    purges_skipped: u64,
    events_processed: u64,
    peak_queue_len: usize,
    adversary_turn_truncations: u64,
    purge_cascade_truncations: u64,
    timeline_decimations: u64,
    good_join_times_dropped: u64,
    good_join_times: Vec<Time>,
    timeline: Vec<TimelinePoint>,
    /// The engine's recycled defense-event buffer: handed to
    /// [`Defense::drain_events_into`] so draining never allocates per call
    /// (defenses swap their filled log for this one and keep it).
    events_scratch: Vec<DefenseEvent>,
    /// Completed-interval estimates, accumulated from per-purge drains of
    /// the defense event log (see [`absorb_defense_events`]).
    ///
    /// [`absorb_defense_events`]: Simulation::absorb_defense_events
    estimates: Vec<EstimateRecord>,
    /// Completed-purge times, accumulated the same way. Draining at every
    /// purge boundary keeps the *defense-side* log at one iteration's
    /// worth of records, so no init-time reserve has to guess the total
    /// purge count — under heavy attack small memberships complete a
    /// purge every few events, making the full-run log Ω(events).
    purge_times: Vec<Time>,
}

/// Preallocated capacity of the engine's purge-time log: above the purge
/// count of any benchmark scenario (the heaviest sweep cell completes
/// ~73k), so steady-state replay never grows it. Runs that exceed it
/// still record every purge — they just pay a (counted) reallocation.
const PURGE_LOG_PREALLOC: usize = 1 << 17;

/// Preallocated capacity of the engine's estimate log; estimator
/// intervals are far sparser than purges.
const ESTIMATE_LOG_PREALLOC: usize = 4096;

impl<D: Defense, A: Adversary, W: WorkloadSource> Simulation<D, A, W> {
    /// Creates a simulation; call [`run`](Self::run) to execute it.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or a workload
    /// [`try_new`](Self::try_new) rejects.
    pub fn new(cfg: SimConfig, defense: D, adversary: A, workload: W) -> Self {
        Self::try_new(cfg, defense, adversary, workload).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a simulation, returning a structured error for workloads the
    /// engine cannot address instead of panicking.
    ///
    /// # Panics
    ///
    /// Still panics on invalid *configuration* (non-positive horizon, κ
    /// outside `[0, 1)`, non-finite adversary rate) — those are programmer
    /// errors, not data-dependent conditions.
    pub fn try_new(
        cfg: SimConfig,
        defense: D,
        adversary: A,
        workload: W,
    ) -> Result<Self, SimBuildError> {
        assert!(cfg.horizon > Time::ZERO, "horizon must be positive");
        assert!((0.0..1.0).contains(&cfg.kappa), "kappa must be in [0,1)");
        assert!(cfg.adv_rate >= 0.0 && cfg.adv_rate.is_finite());
        let n_sessions = workload.session_count();
        if n_sessions > SessionIndex::MAX as u64 {
            return Err(SimBuildError::TooManySessions { sessions: n_sessions });
        }
        let initial_size = workload.initial_size();
        let state_shards = workload.state_shards();
        let preallocate_admission = workload.preallocate_admission();
        let mut state = ShardedDefenseState::new(n_sessions, state_shards);
        if preallocate_admission {
            // Resident sources opt in: first-touch segment boxes would be
            // the last allocations left inside the steady-state loop. The
            // report's admission gauge counts touched segments only, so
            // this is invisible to fingerprints and memory numbers.
            state.preallocate_admission();
        }
        // Preallocate the recorded series to their caps so the steady-state
        // event loop never grows them. Capacity is invisible to the report,
        // so this cannot perturb fingerprints.
        let good_join_cap = if cfg.record_good_joins {
            cfg.max_good_join_times.map_or(n_sessions as usize, |c| c.min(n_sessions as usize))
        } else {
            0
        };
        let timeline_cap = match cfg.timeline_resolution {
            Some(dt) if dt > 0.0 => {
                let expected = (cfg.horizon.as_secs() / dt) as usize + 2;
                cfg.max_timeline_points.map_or(expected, |c| c.min(expected))
            }
            _ => 0,
        };
        Ok(Simulation {
            cfg,
            defense,
            adversary,
            // Streaming scheduling keeps the queue at O(active sessions);
            // bucket count scales with the workload for O(1) occupancy.
            queue: EventQueue::with_horizon(cfg.horizon, n_sessions as usize + 1024),
            stream: workload.into_stream(cfg.horizon),
            initial_size,
            pending_depart: None,
            budget: 0.0,
            last_budget_time: Time::ZERO,
            state,
            purge_pending: false,
            timeline_dt: 0.0,
            frac_integral: 0.0,
            last_frac: 0.0,
            last_frac_time: Time::ZERO,
            max_bad_fraction: 0.0,
            bad_joins_admitted: 0,
            bad_join_attempts: 0,
            purges: 0,
            purges_skipped: 0,
            events_processed: 0,
            peak_queue_len: 0,
            adversary_turn_truncations: 0,
            purge_cascade_truncations: 0,
            timeline_decimations: 0,
            good_join_times_dropped: 0,
            good_join_times: Vec::with_capacity(good_join_cap),
            timeline: Vec::with_capacity(timeline_cap),
            events_scratch: Vec::with_capacity(256),
            estimates: Vec::with_capacity(ESTIMATE_LOG_PREALLOC),
            purge_times: Vec::with_capacity(PURGE_LOG_PREALLOC),
        })
    }

    /// Runs the simulation to the horizon and returns the report.
    pub fn run(self) -> SimReport {
        self.run_with_defense().0
    }

    /// Runs the simulation, returning both the report and the final defense
    /// state (for inspecting defense-internal history such as committee
    /// evolution).
    pub fn run_with_defense(self) -> (SimReport, D) {
        self.run_spanned(|| {}, || {})
    }

    /// Runs the simulation with instrumentation hooks bracketing the
    /// steady-state event loop: `enter` fires after scheduling and
    /// initialization (immediately before the first event pops), `exit`
    /// fires after the last event (before report assembly). The span is
    /// exactly the region the allocation budget covers — setup and
    /// teardown allocations are excluded by construction. Behavior is
    /// identical to [`run_with_defense`](Self::run_with_defense).
    pub fn run_spanned(mut self, enter: impl FnOnce(), exit: impl FnOnce()) -> (SimReport, D) {
        if self.stream.merged() {
            return self.run_merged(enter, exit);
        }
        self.schedule_workload();
        self.initialize();
        enter();
        // Loop-local counters: `dispatch(&mut self)` would otherwise force
        // these through memory on every event.
        let mut events_processed = 0u64;
        let mut peak_queue_len = self.queue.len();
        while let Some((t, ev)) = self.queue.pop() {
            if t > self.cfg.horizon {
                break;
            }
            events_processed += 1;
            self.state.note_event();
            self.accrue_budget(t);
            self.dispatch(t, ev);
            self.check_purge(t);
            peak_queue_len = peak_queue_len.max(self.queue.len());
        }
        exit();
        self.events_processed = events_processed;
        self.peak_queue_len = peak_queue_len;
        self.finish()
    }

    /// The run loop for *merged* streams (sharded workloads): the stream
    /// yields fully ordered `(time, seq, event)` triples, and this loop
    /// k-way-merges them against the internal event queue by the global
    /// `(time, seq)` key — the exact total order the monolithic loop pops.
    ///
    /// Internal events (adversary wakeups, periodic charges, purge
    /// resolutions, samples) draw sequence numbers above the workload's
    /// reserved floor in the same order as the monolithic scheduler
    /// (workload pushes never bump the counter there), so every key — and
    /// with it every `SimReport` bit — matches the 1-shard run.
    fn run_merged(mut self, enter: impl FnOnce(), exit: impl FnOnce()) -> (SimReport, D) {
        self.queue.advance_seq_to(self.stream.seq_floor());
        self.schedule_internal();
        self.initialize();
        enter();
        let mut events_processed = 0u64;
        let mut peak_queue_len = self.queue.len();
        let mut next_workload = self.stream.next_event();
        loop {
            // Keys are globally unique, so strict `<` decides the merge.
            let workload_key = next_workload.as_ref().map(|&(t, s, _)| (t, s));
            let take_workload = match (workload_key, self.queue.peek_key()) {
                (Some(w), Some(q)) => w < q,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (t, ev) = if take_workload {
                let (t, _, ev) = next_workload.take().expect("workload head exists");
                next_workload = self.stream.next_event();
                (t, MergedEvent::Workload(ev))
            } else {
                let (t, ev) = self.queue.pop().expect("queue head exists");
                (t, MergedEvent::Internal(ev))
            };
            // Streams only yield in-horizon events, so (as in the
            // monolithic loop) only an internal event can end the run.
            if t > self.cfg.horizon {
                break;
            }
            events_processed += 1;
            self.state.note_event();
            self.accrue_budget(t);
            match ev {
                MergedEvent::Workload(StreamEvent::Join(i)) => self.handle_good_join(t, i),
                MergedEvent::Workload(StreamEvent::Depart(i, joined_at)) => {
                    self.handle_good_depart(t, i, joined_at)
                }
                MergedEvent::Workload(StreamEvent::InitialDepart) => self.handle_initial_depart(t),
                MergedEvent::Internal(ev) => self.dispatch(t, ev),
            }
            self.check_purge(t);
            peak_queue_len = peak_queue_len.max(self.queue.len());
        }
        exit();
        self.events_processed = events_processed;
        self.peak_queue_len = peak_queue_len;
        self.finish()
    }

    /// Primes the streaming schedule: reserves the workload's sequence
    /// range, then queues just the *first* good join and the *first*
    /// initial departure; the rest stream in lazily as their predecessors
    /// pop. See [`WorkloadStream`] for the determinism argument.
    fn schedule_workload(&mut self) {
        self.queue.advance_seq_to(self.stream.seq_floor());
        self.stream_next_session();
        self.stream_next_initial_depart();
        self.schedule_internal();
    }

    /// Queues the initial internal events (adversary wakeup, first timeline
    /// sample). Push order matters: these draw the first sequence numbers
    /// above the workload floor, in both the monolithic and merged modes.
    fn schedule_internal(&mut self) {
        if self.cfg.adv_rate > 0.0 {
            self.queue.push(Time::ZERO, Event::AdvWake);
        }
        if let Some(dt) = self.cfg.timeline_resolution {
            assert!(dt > 0.0, "timeline resolution must be positive");
            if let Some(cap) = self.cfg.max_timeline_points {
                assert!(cap >= 2, "max_timeline_points must be at least 2");
            }
            self.timeline_dt = dt;
            self.queue.push(Time::ZERO, Event::Sample);
        }
    }

    /// Feeds the next good join into the queue, remembering its departure
    /// so [`Event::GoodJoin`] handling can stream it in turn.
    fn stream_next_session(&mut self) {
        if let Some((i, s, join_seq)) = self.stream.next_session() {
            self.pending_depart =
                (s.depart <= self.cfg.horizon).then_some((s.depart, join_seq + 1));
            self.queue.push_with_seq(s.join, join_seq, Event::GoodJoin(i));
        }
    }

    /// Feeds the next initial departure into the queue.
    fn stream_next_initial_depart(&mut self) {
        if let Some((at, seq)) = self.stream.next_initial_departure() {
            self.queue.push_with_seq(at, seq, Event::InitialDepart);
        }
    }

    fn initialize(&mut self) {
        let n_good = self.initial_size;
        let n_bad = self.cfg.initial_bad;
        let per_id = self.defense.init(Time::ZERO, n_good, n_bad);
        self.state.charge_root_good(Purpose::Entrance, per_id * n_good as f64);
        self.state.charge_root_adversary(Purpose::Entrance, per_id * n_bad as f64);
        if let Some(next) = self.defense.next_periodic() {
            self.queue.push(next, Event::Periodic);
        }
        self.note_membership_change(Time::ZERO);
    }

    fn view(&self, now: Time) -> DefenseView {
        // The quote is a windowed count inside the defense — by far the
        // most expensive view field — and most strategies never read it.
        let quote = if self.adversary.needs_quote() { self.defense.quote(now) } else { Cost::ZERO };
        DefenseView { now, n_members: self.defense.n_members(), n_bad: self.defense.n_bad(), quote }
    }

    fn accrue_budget(&mut self, now: Time) {
        let dt = now - self.last_budget_time;
        if dt > 0.0 {
            self.budget += self.cfg.adv_rate * dt;
            self.last_budget_time = now;
        }
    }

    /// Updates the bad-fraction integral and max after any membership change.
    fn note_membership_change(&mut self, now: Time) {
        let dt = now - self.last_frac_time;
        if dt > 0.0 {
            self.frac_integral += self.last_frac * dt;
            self.last_frac_time = now;
        }
        let members = self.defense.n_members();
        let frac = if members == 0 { 0.0 } else { self.defense.n_bad() as f64 / members as f64 };
        self.last_frac = frac;
        if frac > self.max_bad_fraction {
            self.max_bad_fraction = frac;
        }
    }

    /// Semantic effect of a good join: defense verdict, ledger charge,
    /// admission record, counters — all recorded on the session's owning
    /// state shard. Shared verbatim by the monolithic dispatch and the
    /// merged loop — bit-identity between the two modes rests on this
    /// being one code path.
    fn handle_good_join(&mut self, now: Time, i: SessionIndex) {
        let admission = self.defense.good_join(now);
        self.state.record_good_join(i as u64, admission.is_admitted(), admission.cost());
        if admission.is_admitted() && self.cfg.record_good_joins {
            match self.cfg.max_good_join_times {
                Some(cap) if self.good_join_times.len() >= cap => {
                    self.good_join_times_dropped += 1;
                }
                _ => self.good_join_times.push(now),
            }
        }
        self.note_membership_change(now);
    }

    /// Semantic effect of an arrival session's departure: only admitted
    /// sessions count, and the admission verdict lives on the session's
    /// owning state shard.
    fn handle_good_depart(&mut self, now: Time, i: SessionIndex, joined_at: Time) {
        if self.state.record_good_depart(i as u64) {
            self.defense.good_depart(now, joined_at);
            self.note_membership_change(now);
        }
    }

    /// Semantic effect of a t=0 resident's departure (root-owned; initial
    /// residents are not arrival sessions).
    fn handle_initial_depart(&mut self, now: Time) {
        self.defense.good_depart(now, Time::ZERO);
        self.state.record_initial_depart();
        self.note_membership_change(now);
    }

    fn dispatch(&mut self, now: Time, ev: Event) {
        match ev {
            Event::GoodJoin(i) => {
                // Stream first: this session's departure (the pending one
                // is always ours — only one workload join is queued at a
                // time), then the next session's join. The departure event
                // carries `now` (= the session's join time) so departure
                // handling never re-reads the workload record.
                if let Some((at, seq)) = self.pending_depart.take() {
                    self.queue.push_with_seq(at, seq, Event::GoodDepart(i, now));
                }
                self.stream_next_session();
                self.handle_good_join(now, i);
            }
            Event::GoodDepart(i, joined_at) => self.handle_good_depart(now, i, joined_at),
            Event::InitialDepart => {
                self.stream_next_initial_depart();
                self.handle_initial_depart(now);
            }
            Event::AdvWake => {
                self.adversary_turn(now);
                if let Some(next) = self.adversary.next_wakeup(now) {
                    if next <= self.cfg.horizon {
                        self.queue.push(next, Event::AdvWake);
                    }
                }
            }
            Event::Periodic => {
                self.periodic_charge(now);
                if let Some(next) = self.defense.next_periodic() {
                    if next <= self.cfg.horizon {
                        self.queue.push(next, Event::Periodic);
                    }
                }
            }
            Event::PurgeResolve => {
                self.purge_pending = false;
                self.resolve_purge(now);
            }
            Event::Sample => {
                self.timeline.push(TimelinePoint {
                    at: now,
                    members: self.defense.n_members(),
                    bad: self.defense.n_bad(),
                    good_spend: self.state.good_total().value(),
                    adv_spend: self.state.adversary_total().value(),
                });
                if let Some(cap) = self.cfg.max_timeline_points {
                    if self.timeline.len() >= cap {
                        // Keep every other point and sample half as often:
                        // the series stays evenly spaced, just coarser.
                        let mut keep = 0;
                        for idx in (0..self.timeline.len()).step_by(2) {
                            self.timeline[keep] = self.timeline[idx];
                            keep += 1;
                        }
                        self.timeline.truncate(keep);
                        self.timeline_dt *= 2.0;
                        self.timeline_decimations += 1;
                    }
                }
                let next = now + self.timeline_dt;
                if next <= self.cfg.horizon {
                    self.queue.push(next, Event::Sample);
                }
            }
        }
    }

    /// Lets the adversary spend: departures, then batched joins, resolving
    /// any purge its own joins trigger (instant rounds) before continuing.
    fn adversary_turn(&mut self, now: Time) {
        // Bounded loop: each pass either makes progress (joins/departs) or
        // breaks, and purge resolution resets the defense's join counter.
        let mut rounds_left = self.cfg.max_adversary_turn_rounds;
        loop {
            if rounds_left == 0 {
                self.adversary_turn_truncations += 1;
                break;
            }
            rounds_left -= 1;
            let view = self.view(now);
            let action = self.adversary.act(&view, Cost(self.budget.max(0.0)));
            let mut progressed = false;
            if action.departs > 0 {
                let departed = self.defense.bad_depart(now, action.departs);
                progressed |= departed > 0;
                self.note_membership_change(now);
            }
            if action.max_joins > 0 && action.join_budget > Cost::ZERO {
                let batch = self.defense.bad_join_batch(now, action.join_budget, action.max_joins);
                self.budget -= batch.spent.value();
                self.state.charge_root_adversary(Purpose::Entrance, batch.spent);
                self.bad_joins_admitted += batch.admitted;
                self.bad_join_attempts += batch.attempts;
                progressed |= batch.attempts > 0;
                self.note_membership_change(now);
                if batch.stop == BatchStop::PurgeTriggered {
                    if self.cfg.round_duration == 0.0 {
                        self.resolve_purge(now);
                        continue;
                    } else {
                        if !self.purge_pending {
                            self.purge_pending = true;
                            self.queue.push(now + self.cfg.round_duration, Event::PurgeResolve);
                        }
                        break;
                    }
                }
            }
            if !progressed {
                break;
            }
            // Joins succeeded without tripping a purge: the batch consumed
            // everything affordable, so yield until the next wakeup.
            break;
        }
    }

    /// Schedules or resolves a purge if the defense's condition holds.
    fn check_purge(&mut self, now: Time) {
        if self.purge_pending {
            return;
        }
        // Loop defensively: a purge can (in principle) leave the condition
        // true again; bail out after a bounded number of rounds to avoid
        // live-lock, counting the truncation in the report.
        for _ in 0..self.cfg.max_purge_cascade_rounds {
            if !self.defense.purge_due(now) {
                return;
            }
            if self.cfg.round_duration == 0.0 {
                self.resolve_purge(now);
            } else {
                self.purge_pending = true;
                self.queue.push(now + self.cfg.round_duration, Event::PurgeResolve);
                return;
            }
        }
        if self.defense.purge_due(now) {
            self.purge_cascade_truncations += 1;
        }
    }

    fn resolve_purge(&mut self, now: Time) {
        let view = self.view(now);
        let cap = (self.cfg.kappa * view.n_members as f64).floor() as u64;
        let retain = self
            .adversary
            .purge_retention(&view, cap, Cost(self.budget.max(0.0)))
            .min(cap)
            .min(view.n_bad);
        let report = self.defense.purge(now, retain);
        self.state.apply_purge(&report);
        self.budget -= report.adv_cost.value();
        if report.skipped {
            self.purges_skipped += 1;
        } else {
            self.purges += 1;
        }
        self.absorb_defense_events();
        self.note_membership_change(now);
    }

    /// Drains the defense's event log into the engine's accumulators.
    ///
    /// Called after every purge resolution and once more at finish. The
    /// drain ping-pongs the recycled `events_scratch` buffer with the
    /// defense's log, and the accumulators are preallocated, so in steady
    /// state this whole path allocates nothing. Event order within each
    /// category is chronological at every drain, so the resulting vectors
    /// are byte-identical to a single drain at finish.
    fn absorb_defense_events(&mut self) {
        self.events_scratch.clear();
        self.defense.drain_events_into(&mut self.events_scratch);
        for &ev in &self.events_scratch {
            match ev {
                DefenseEvent::EstimateUpdated { start, end, estimate } => {
                    self.estimates.push(EstimateRecord { start, end, estimate });
                }
                DefenseEvent::PurgeCompleted { at, .. } => self.purge_times.push(at),
                DefenseEvent::PurgeSkipped { .. } => {}
            }
        }
    }

    fn periodic_charge(&mut self, now: Time) {
        let cost_per = self.defense.periodic_cost_per_member(now);
        let view = self.view(now);
        let retain = self
            .adversary
            .periodic_retention(&view, cost_per, Cost(self.budget.max(0.0)))
            .min(view.n_bad);
        let report = self.defense.periodic_apply(now, retain);
        let adv_cost = cost_per * retain as f64;
        self.state.apply_periodic(&report, adv_cost);
        self.budget -= adv_cost.value();
        self.note_membership_change(now);
    }

    fn finish(mut self) -> (SimReport, D) {
        // Collect any defense events logged since the last purge.
        self.absorb_defense_events();
        // Close the bad-fraction integral at the horizon.
        let dt = self.cfg.horizon - self.last_frac_time;
        if dt > 0.0 {
            self.frac_integral += self.last_frac * dt;
        }
        // The final epoch reduction: fold every shard's remaining delta
        // and seal the fixed-point ledgers into the report's float form.
        let sealed = self.state.finalize();
        let report = SimReport {
            defense: self.defense.name(),
            adversary: self.adversary.name(),
            horizon: self.cfg.horizon.as_secs(),
            ledger: sealed.ledger,
            good_joins_admitted: sealed.good_joins_admitted,
            good_joins_refused: sealed.good_joins_refused,
            good_departures: sealed.good_departures,
            bad_joins_admitted: self.bad_joins_admitted,
            bad_join_attempts: self.bad_join_attempts,
            purges: self.purges,
            purges_skipped: self.purges_skipped,
            max_bad_fraction: self.max_bad_fraction,
            mean_bad_fraction: self.frac_integral / self.cfg.horizon.as_secs(),
            final_members: self.defense.n_members(),
            final_bad: self.defense.n_bad(),
            events_processed: self.events_processed,
            peak_queue_len: self.peak_queue_len,
            adversary_turn_truncations: self.adversary_turn_truncations,
            purge_cascade_truncations: self.purge_cascade_truncations,
            timeline_decimations: self.timeline_decimations,
            good_join_times_dropped: self.good_join_times_dropped,
            admission_bytes: sealed.admission_bytes,
            workload_stream_bytes: self.stream.resident_bytes(),
            estimates: self.estimates,
            purge_times: self.purge_times,
            good_join_times: self.good_join_times,
            timeline: self.timeline,
        };
        (report, self.defense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BudgetJoiner, NullAdversary};
    use crate::testutil::UnitCostDefense;
    use crate::workload::{MemoryStream, Session};

    fn small_workload() -> Workload {
        Workload::new(
            vec![Time(1e9); 100],
            (0..50).map(|i| Session::new(Time(i as f64 + 1.0), Time(i as f64 + 500.0))).collect(),
        )
    }

    #[test]
    fn no_attack_run_admits_all_good() {
        let cfg = SimConfig { horizon: Time(1000.0), ..SimConfig::default() };
        let report =
            Simulation::new(cfg, UnitCostDefense::new(), NullAdversary, small_workload()).run();
        assert_eq!(report.good_joins_admitted, 50);
        assert_eq!(report.bad_joins_admitted, 0);
        assert_eq!(report.max_bad_fraction, 0.0);
        // init (100) + joins (50) each cost 1.
        assert_eq!(report.ledger.good_total().value(), 150.0);
    }

    #[test]
    fn departures_are_processed() {
        let w = Workload::new(vec![Time(10.0); 5], vec![Session::new(Time(1.0), Time(2.0))]);
        let cfg = SimConfig { horizon: Time(100.0), ..SimConfig::default() };
        let report = Simulation::new(cfg, UnitCostDefense::new(), NullAdversary, w).run();
        assert_eq!(report.good_departures, 6);
        assert_eq!(report.final_members, 0);
    }

    #[test]
    fn adversary_budget_limits_joins() {
        // Unit cost, T=1: over 100 s the adversary can afford ~100 joins.
        let cfg = SimConfig { horizon: Time(100.0), adv_rate: 1.0, ..SimConfig::default() };
        let report =
            Simulation::new(cfg, UnitCostDefense::new(), BudgetJoiner::new(1.0), small_workload())
                .run();
        assert!(report.bad_joins_admitted > 50, "{}", report.bad_joins_admitted);
        assert!(report.bad_joins_admitted <= 101, "{}", report.bad_joins_admitted);
        let spent = report.ledger.adversary_total().value();
        assert!(spent <= 100.0 + 1e-9, "overspent: {spent}");
    }

    #[test]
    fn bad_fraction_tracked() {
        let cfg = SimConfig { horizon: Time(100.0), adv_rate: 5.0, ..SimConfig::default() };
        let report =
            Simulation::new(cfg, UnitCostDefense::new(), BudgetJoiner::new(5.0), small_workload())
                .run();
        assert!(report.max_bad_fraction > 0.0);
        assert!(report.mean_bad_fraction > 0.0);
        assert!(report.max_bad_fraction <= 1.0);
        assert!(report.mean_bad_fraction <= report.max_bad_fraction);
    }

    #[test]
    fn timeline_sampling() {
        let cfg = SimConfig {
            horizon: Time(10.0),
            timeline_resolution: Some(1.0),
            ..SimConfig::default()
        };
        let report =
            Simulation::new(cfg, UnitCostDefense::new(), NullAdversary, small_workload()).run();
        assert_eq!(report.timeline.len(), 11); // t = 0..=10
        assert!(report.timeline.windows(2).all(|w| w[0].at < w[1].at));
        assert_eq!(report.timeline_decimations, 0);
    }

    #[test]
    fn timeline_cap_decimates_instead_of_growing() {
        let cfg = SimConfig {
            horizon: Time(1000.0),
            timeline_resolution: Some(1.0),
            max_timeline_points: Some(16),
            ..SimConfig::default()
        };
        let report =
            Simulation::new(cfg, UnitCostDefense::new(), NullAdversary, small_workload()).run();
        assert!(report.timeline.len() <= 16, "timeline grew to {}", report.timeline.len());
        assert!(report.timeline_decimations > 0);
        // Decimation keeps the series time-ordered and spanning the run.
        assert!(report.timeline.windows(2).all(|w| w[0].at < w[1].at));
        assert_eq!(report.timeline[0].at, Time::ZERO);
        assert!(report.timeline.last().unwrap().at > Time(500.0));
    }

    #[test]
    fn initial_bad_is_seeded() {
        let cfg = SimConfig { horizon: Time(10.0), initial_bad: 20, ..SimConfig::default() };
        let report =
            Simulation::new(cfg, UnitCostDefense::new(), NullAdversary, small_workload()).run();
        assert_eq!(report.final_bad, 20);
        assert!(report.max_bad_fraction > 0.1);
    }

    #[test]
    fn record_good_joins_flag() {
        let cfg =
            SimConfig { horizon: Time(1000.0), record_good_joins: true, ..SimConfig::default() };
        let report =
            Simulation::new(cfg, UnitCostDefense::new(), NullAdversary, small_workload()).run();
        assert_eq!(report.good_join_times.len(), 50);
        assert!(report.good_join_times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(report.good_join_times_dropped, 0);
    }

    #[test]
    fn good_join_recording_cap_counts_drops() {
        let cfg = SimConfig {
            horizon: Time(1000.0),
            record_good_joins: true,
            max_good_join_times: Some(10),
            ..SimConfig::default()
        };
        let report =
            Simulation::new(cfg, UnitCostDefense::new(), NullAdversary, small_workload()).run();
        assert_eq!(report.good_join_times.len(), 10);
        assert_eq!(report.good_join_times_dropped, 40);
        assert_eq!(report.good_joins_admitted, 50);
    }

    #[test]
    fn admission_memory_is_reported() {
        let cfg = SimConfig { horizon: Time(1000.0), ..SimConfig::default() };
        let report =
            Simulation::new(cfg, UnitCostDefense::new(), NullAdversary, small_workload()).run();
        // One touched segment (2 KiB) plus the directory entry.
        assert!(report.admission_bytes > 0);
        assert!(report.admission_bytes < 4096, "{}", report.admission_bytes);
        assert!(report.workload_stream_bytes > 0);
    }

    /// A stub source that claims more sessions than `SessionIndex` holds;
    /// `try_new` must reject it before any streaming happens.
    struct OverflowingSource;
    impl WorkloadSource for OverflowingSource {
        type Stream = MemoryStream;
        fn initial_size(&self) -> u64 {
            0
        }
        fn session_count(&self) -> u64 {
            SessionIndex::MAX as u64 + 1
        }
        fn into_stream(self, _horizon: Time) -> MemoryStream {
            unreachable!("rejected before streaming")
        }
    }

    #[test]
    fn session_count_boundary_is_a_structured_error() {
        let cfg = SimConfig { horizon: Time(10.0), ..SimConfig::default() };
        let err =
            Simulation::try_new(cfg, UnitCostDefense::new(), NullAdversary, OverflowingSource)
                .err()
                .expect("must reject > SessionIndex::MAX sessions");
        assert_eq!(err, SimBuildError::TooManySessions { sessions: SessionIndex::MAX as u64 + 1 });
        assert!(err.to_string().contains("32-bit"));
    }
}
