//! Identifiers.
//!
//! Every joining ID is treated as new (paper Section 2.1.1: a join-event
//! counter is concatenated to the chosen name, guaranteeing uniqueness).
//! The simulation mirrors this with a monotone allocator.

/// An opaque identifier for a (virtual) participant.
///
/// Defenses treat IDs as opaque; whether an ID is good or Sybil is ground
/// truth known only to the simulation engine and the adversary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(pub u64);

impl std::fmt::Display for Id {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "id{}", self.0)
    }
}

impl Id {
    /// Serializes the ID for use as a PoW solver identity.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }
}

/// Ground truth about an ID, known to the engine but never to defenses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Obeys the protocol; join/departure driven by the churn trace.
    Good,
    /// Controlled by the Sybil adversary.
    Bad,
}

/// Monotone allocator implementing the paper's join-event counter.
#[derive(Clone, Debug, Default)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// A fresh allocator starting at `id0`.
    pub fn new() -> Self {
        IdAllocator::default()
    }

    /// Allocates the next unique ID.
    pub fn fresh(&mut self) -> Id {
        let id = Id(self.next);
        self.next += 1;
        id
    }

    /// Number of IDs allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_is_monotone_and_unique() {
        let mut alloc = IdAllocator::new();
        let a = alloc.fresh();
        let b = alloc.fresh();
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(alloc.allocated(), 2);
    }

    #[test]
    fn id_bytes_roundtrip() {
        let id = Id(0xdead_beef);
        assert_eq!(u64::from_be_bytes(id.to_bytes()), 0xdead_beef);
        assert_eq!(id.to_string(), "id3735928559");
    }
}
