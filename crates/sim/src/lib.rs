//! Discrete-event simulation substrate for Sybil-defense experiments.
//!
//! This crate provides everything the experiments in *Bankrupting Sybil
//! Despite Churn* (ICDCS 2021) need below the defense algorithms themselves:
//!
//! * [`time`], [`id`], [`cost`] — core vocabulary types (virtual seconds,
//!   opaque identifiers, resource-burning units and the split ledger);
//! * [`queue`] — a deterministic, FIFO-tie-broken event queue;
//! * [`dist`] — from-scratch Weibull/exponential/Pareto/log-normal samplers
//!   and a Poisson counter, driving the churn workloads;
//! * [`workload`] / [`workload_io`] — good-ID session schedules replayed by
//!   the engine, resident in memory or streamed from a versioned on-disk
//!   format;
//! * [`admission`] — packed 2-bit per-session admission state;
//! * [`defense`] / [`adversary`] — the traits every simulated defense and
//!   attack strategy implement;
//! * [`engine`] — the simulation loop with budgeted adversaries, purge
//!   rounds, periodic charges, and invariant tracking;
//! * [`shard`] — shared-nothing sharded workload replay, bit-identical to
//!   the single-threaded loop for every shard count;
//! * [`report`] / [`stats`] — run outputs and summary statistics.
//!
//! Ground truth (which IDs are Sybil) lives in the engine and the adversary;
//! defenses observe only event streams, as the paper's server does.
//!
//! # Example
//!
//! ```
//! use sybil_sim::adversary::BudgetJoiner;
//! use sybil_sim::engine::{SimConfig, Simulation};
//! use sybil_sim::testutil::UnitCostDefense;
//! use sybil_sim::time::Time;
//! use sybil_sim::workload::{Session, Workload};
//!
//! let workload = Workload::new(vec![Time(1e9); 50], vec![]);
//! let cfg = SimConfig { horizon: Time(100.0), adv_rate: 2.0, ..SimConfig::default() };
//! let report = Simulation::new(cfg, UnitCostDefense::new(), BudgetJoiner::new(2.0), workload).run();
//! // At unit entrance cost and T = 2, about 200 Sybil IDs join over 100 s.
//! assert!(report.bad_joins_admitted > 150);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod adversary;
pub mod cost;
pub mod defense;
pub mod dist;
pub mod engine;
pub mod id;
pub mod queue;
pub mod report;
pub mod shard;
pub mod shard_state;
pub mod stats;
pub mod testutil;
pub mod time;
pub mod workload;
pub mod workload_io;

pub use admission::{AdmissionMap, AdmissionState};
pub use cost::{Cost, Ledger, Purpose};
pub use defense::{Admission, BatchAdmission, BatchStop, Defense};
pub use engine::{SimBuildError, SimConfig, Simulation};
pub use id::{Id, IdAllocator, Kind};
pub use report::SimReport;
pub use shard::ShardedWorkload;
pub use shard_state::{EpochDelta, FixedCost, FixedLedger, ShardedDefenseState};
pub use time::Time;
pub use workload::{Session, SessionIndex, StreamEvent, Workload, WorkloadSource, WorkloadStream};
pub use workload_io::{write_workload, write_workload_file, DiskWorkload};
