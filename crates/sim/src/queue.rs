//! A stable discrete-event queue.
//!
//! Events fire in time order; ties break by insertion order, which makes
//! whole simulations deterministic given seeds. The paper assumes "every
//! join and departure event occurs at a unique point in time" with the
//! server ordering apparent ties (Section 2.1.1) — the insertion sequence
//! number plays that role here.
//!
//! # Two backends, one contract
//!
//! The queue has two interchangeable backends sharing the exact ordering
//! contract (strictly increasing `(time, seq)` pop order):
//!
//! * **Heap** (default): a plain binary heap, `O(log n)` push/pop for any
//!   time distribution. [`EventQueue::new`] and
//!   [`EventQueue::with_capacity`] build this.
//! * **Calendar** ([`EventQueue::with_horizon`]): a static calendar over
//!   `[0, horizon]` divided into fixed-width buckets, each a small vector
//!   kept sorted. Simulation time only moves forward, so push and pop are
//!   `O(bucket occupancy)` — amortized `O(1)` when events spread over the
//!   horizon, which is exactly the engine's workload. Events past the
//!   horizon share one overflow bucket (the engine stops at the first such
//!   event anyway).
//!
//! Because every entry's `(time, seq)` key is unique, both backends pop the
//! same total order; `tests::backends_agree_with_reference_model` pins this
//! against a reference model.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use sybil_sim::queue::EventQueue;
/// use sybil_sim::time::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time(2.0), "b");
/// q.push(Time(1.0), "a");
/// q.push(Time(2.0), "c");
/// assert_eq!(q.peek(), Some((Time(1.0), &"a")));
/// assert_eq!(q.pop(), Some((Time(1.0), "a")));
/// assert_eq!(q.pop(), Some((Time(2.0), "b")));
/// assert_eq!(q.pop(), Some((Time(2.0), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
}

#[derive(Clone, Debug)]
enum Backend<E> {
    Heap(BinaryHeap<Reverse<Entry<E>>>),
    Calendar(Calendar<E>),
}

#[derive(Clone, Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The calendar backend: fixed-width buckets over `[0, horizon]`, plus one
/// overflow bucket for times past the horizon.
///
/// Each bucket is a [`Bucket`]: an ascending-sorted vector consumed
/// through a head index. The engine's dominant pattern — pop the minimum,
/// then push a successor with the largest key in the bucket — is O(1) at
/// both ends (`items.push` / `head += 1`); only out-of-order pushes pay a
/// binary-search insert over the bucket's O(total / n_buckets) live
/// entries. Amortized O(1) for horizon-spread workloads.
#[derive(Clone, Debug)]
struct Calendar<E> {
    buckets: Vec<Bucket<E>>,
    /// Recycled slot vectors. Simulation time sweeps the bucket array once,
    /// so without recycling every bucket pays its own first-growth
    /// allocations mid-run — the single biggest allocation source in the
    /// engine's steady-state loop. Drained buckets donate their (cleared,
    /// capacity-bearing) vectors here; first pushes into fresh buckets take
    /// one back. Pre-seeded at construction so the active band of buckets
    /// never allocates, and bounded so retained memory stays O(band).
    spare: Vec<Vec<Option<Entry<E>>>>,
    /// Buckets per second (`n_buckets / horizon`).
    inv_width: f64,
    /// Index of the lowest possibly-nonempty bucket.
    cursor: usize,
    len: usize,
}

/// Spare-pool bound: covers the engine's active band of in-flight buckets
/// (peak pending events ≈ active sessions, spread over nearby buckets).
/// Donations beyond the bound are dropped — deallocation is not the
/// budgeted operation.
const SPARE_POOL: usize = 256;

/// Pre-seeded capacity of each spare vector: far above the mean bucket
/// occupancy the sizing in [`EventQueue::with_horizon`] targets (O(1) per
/// bucket), because same-time bursts (quantized trace timestamps, purge
/// cascades, adversary batches) pile up to peak-queue-length entries into
/// one bucket — engine peaks run ~100–200 for the macro scenarios. A
/// grown vector re-enters the pool on drain, so one outgrowth amortizes,
/// but the steady-state budget wants no outgrowth at all.
const SPARE_SLOT_CAP: usize = 256;

/// One calendar bucket: `slots[head..]` hold the live entries, ascending
/// by `(time, seq)`. Entries are taken out of their `Option` slot in O(1)
/// as the head advances; the dead prefix is reclaimed when the bucket
/// drains (buckets drain completely as simulation time passes them).
#[derive(Clone, Debug)]
struct Bucket<E> {
    slots: Vec<Option<Entry<E>>>,
    head: usize,
}

impl<E> Bucket<E> {
    fn live(&self) -> usize {
        self.slots.len() - self.head
    }

    fn push(&mut self, entry: Entry<E>) {
        match self.slots.last() {
            // Fast path: new bucket maximum (the monotone engine pattern)
            // or empty bucket.
            Some(last) if last.as_ref().expect("tail slot is live").key() > entry.key() => {
                let pos = self.slots[self.head..]
                    .partition_point(|e| e.as_ref().expect("live slot").key() < entry.key())
                    + self.head;
                self.slots.insert(pos, Some(entry));
            }
            _ => self.slots.push(Some(entry)),
        }
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        let entry = self.slots.get_mut(self.head)?.take();
        self.head += 1;
        if self.head == self.slots.len() {
            // Drained: reset, keeping the allocation for reuse.
            self.slots.clear();
            self.head = 0;
        }
        entry
    }

    fn peek(&self) -> Option<&Entry<E>> {
        self.slots.get(self.head)?.as_ref()
    }
}

impl<E> Calendar<E> {
    fn new(horizon: Time, n_buckets: usize) -> Self {
        let n = n_buckets.max(1);
        // Seeding happens at construction, outside the engine's measured
        // steady-state span; SPARE_POOL × SPARE_SLOT_CAP slots is ~100 KiB
        // of Entry<E> capacity for engine-sized events.
        let spare_seed = SPARE_POOL.min(n);
        Calendar {
            buckets: (0..=n).map(|_| Bucket { slots: Vec::new(), head: 0 }).collect(),
            spare: (0..spare_seed).map(|_| Vec::with_capacity(SPARE_SLOT_CAP)).collect(),
            inv_width: n as f64 / horizon.as_secs().max(f64::MIN_POSITIVE),
            cursor: 0,
            len: 0,
        }
    }

    fn bucket_index(&self, at: Time) -> usize {
        // Times before 0 clamp to bucket 0, times past the horizon to the
        // overflow bucket (last index).
        let raw = at.as_secs().max(0.0) * self.inv_width;
        (raw as usize).min(self.buckets.len() - 1)
    }

    fn push(&mut self, entry: Entry<E>) {
        let idx = self.bucket_index(entry.at);
        // Pushes at or after the current simulation time are the norm, but
        // arbitrary interleavings stay correct: the cursor backs up.
        self.cursor = self.cursor.min(idx);
        let bucket = &mut self.buckets[idx];
        if bucket.slots.capacity() == 0 {
            if let Some(spare) = self.spare.pop() {
                bucket.slots = spare;
            }
        }
        bucket.push(entry);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.cursor].live() == 0 {
            self.cursor += 1;
        }
        self.len -= 1;
        let bucket = &mut self.buckets[self.cursor];
        let entry = bucket.pop();
        // Bucket::pop clears the slots on full drain; recycle the vector
        // into the spare pool so the next fresh bucket grows for free. The
        // cursor only moves forward, so a drained bucket behind it will
        // not see another push (out-of-order pushes that do back up the
        // cursor simply re-take a spare).
        if bucket.slots.is_empty() && bucket.slots.capacity() > 0 && self.spare.len() < SPARE_POOL {
            self.spare.push(std::mem::take(&mut bucket.slots));
        }
        entry
    }

    fn peek(&self) -> Option<&Entry<E>> {
        if self.len == 0 {
            return None;
        }
        self.buckets[self.cursor..].iter().find(|b| b.live() > 0).and_then(|b| b.peek())
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue (heap backend).
    pub fn new() -> Self {
        EventQueue { backend: Backend::Heap(BinaryHeap::new()), seq: 0 }
    }

    /// Creates an empty queue with capacity for `n` events (heap backend).
    pub fn with_capacity(n: usize) -> Self {
        EventQueue { backend: Backend::Heap(BinaryHeap::with_capacity(n)), seq: 0 }
    }

    /// Creates a calendar-backed queue for a simulation over
    /// `[0, horizon]`.
    ///
    /// `expected_events` sizes the bucket array (one bucket per expected
    /// event, clamped to a sane range) so that average bucket occupancy
    /// stays O(1) and push/pop are amortized constant-time.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive.
    pub fn with_horizon(horizon: Time, expected_events: usize) -> Self {
        assert!(horizon > Time::ZERO, "calendar queue needs a positive horizon");
        let n_buckets = expected_events.clamp(64, 65_536);
        EventQueue { backend: Backend::Calendar(Calendar::new(horizon, n_buckets)), seq: 0 }
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.push_entry(Entry { at, seq, event });
    }

    /// Schedules `event` at time `at` with an explicit tie-breaking
    /// sequence number.
    ///
    /// This exists so schedulers can *stream* events into the queue lazily
    /// while reproducing the exact FIFO order an eager scheduler would have
    /// produced: the caller precomputes each event's sequence number and
    /// reserves the range via [`advance_seq_to`](Self::advance_seq_to).
    /// Pushing a seq at or above the reserved floor would collide with
    /// future [`push`](Self::push) assignments and panics.
    pub fn push_with_seq(&mut self, at: Time, seq: u64, event: E) {
        assert!(
            seq < self.seq,
            "push_with_seq: seq {seq} not below the reserved floor {}",
            self.seq
        );
        self.push_entry(Entry { at, seq, event });
    }

    /// Raises the internal sequence counter to at least `floor`, reserving
    /// `0..floor` for [`push_with_seq`](Self::push_with_seq).
    pub fn advance_seq_to(&mut self, floor: u64) {
        self.seq = self.seq.max(floor);
    }

    /// Schedules a batch of `(time, event)` pairs in FIFO order (equivalent
    /// to repeated [`push`](Self::push), one sequence number each).
    pub fn push_many<I: IntoIterator<Item = (Time, E)>>(&mut self, items: I) {
        for (at, event) in items {
            self.push(at, event);
        }
    }

    fn push_entry(&mut self, entry: Entry<E>) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Reverse(entry)),
            Backend::Calendar(cal) => cal.push(entry),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.pop().map(|Reverse(e)| (e.at, e.event)),
            Backend::Calendar(cal) => cal.pop().map(|e| (e.at, e.event)),
        }
    }

    /// Removes and returns the earliest event together with its full
    /// `(time, seq)` ordering key.
    ///
    /// The merged (sharded) engine loop compares this key against the
    /// heads of external pre-ordered feeds, so it needs the sequence
    /// number [`pop`](Self::pop) discards.
    pub fn pop_keyed(&mut self) -> Option<(Time, u64, E)> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.pop().map(|Reverse(e)| (e.at, e.seq, e.event)),
            Backend::Calendar(cal) => cal.pop().map(|e| (e.at, e.seq, e.event)),
        }
    }

    /// The earliest pending event, if any, without removing it.
    pub fn peek(&self) -> Option<(Time, &E)> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|Reverse(e)| (e.at, &e.event)),
            Backend::Calendar(cal) => cal.peek().map(|e| (e.at, &e.event)),
        }
    }

    /// Full `(time, seq)` ordering key of the earliest pending event.
    pub fn peek_key(&self) -> Option<(Time, u64)> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|Reverse(e)| e.key()),
            Backend::Calendar(cal) => cal.peek().map(|e| e.key()),
        }
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.peek().map(|(at, _)| at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Calendar(cal) => cal.len,
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Extend<(Time, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (Time, E)>>(&mut self, iter: I) {
        self.push_many(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_backends() -> Vec<EventQueue<i32>> {
        vec![EventQueue::new(), EventQueue::with_horizon(Time(100.0), 64)]
    }

    #[test]
    fn orders_by_time_then_fifo() {
        for mut q in both_backends() {
            q.push(Time(3.0), 30);
            q.push(Time(1.0), 10);
            q.push(Time(1.0), 11);
            q.push(Time(2.0), 20);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![10, 11, 20, 30]);
        }
    }

    #[test]
    fn peek_and_len() {
        for mut q in both_backends() {
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(Time(5.0), 0);
            assert_eq!(q.peek_time(), Some(Time(5.0)));
            assert_eq!(q.peek(), Some((Time(5.0), &0)));
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn keyed_accessors_expose_seq_on_both_backends() {
        for mut q in both_backends() {
            q.push(Time(2.0), 20); // seq 0
            q.push(Time(1.0), 10); // seq 1
            q.push(Time(2.0), 21); // seq 2
            assert_eq!(q.peek_key(), Some((Time(1.0), 1)));
            assert_eq!(q.pop_keyed(), Some((Time(1.0), 1, 10)));
            assert_eq!(q.peek_key(), Some((Time(2.0), 0)));
            assert_eq!(q.pop_keyed(), Some((Time(2.0), 0, 20)));
            assert_eq!(q.pop_keyed(), Some((Time(2.0), 2, 21)));
            assert_eq!(q.pop_keyed(), None);
            assert_eq!(q.peek_key(), None);
        }
    }

    #[test]
    fn extend_works() {
        let mut q = EventQueue::new();
        q.extend(vec![(Time(2.0), 'b'), (Time(1.0), 'a')]);
        assert_eq!(q.pop().unwrap().1, 'a');
    }

    #[test]
    fn push_many_is_fifo() {
        for mut q in both_backends() {
            q.push_many([(Time(1.0), 1), (Time(1.0), 2), (Time(0.5), 0)]);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![0, 1, 2]);
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        for mut q in both_backends() {
            q.push(Time(10.0), 1);
            q.push(Time(5.0), 0);
            assert_eq!(q.pop().unwrap().1, 0);
            q.push(Time(7.0), 2);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 1);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn push_with_seq_reproduces_eager_order() {
        for make in [(|| EventQueue::new()) as fn() -> EventQueue<u32>, || {
            EventQueue::with_horizon(Time(10.0), 64)
        }] {
            // Eager: everything pushed up front.
            let mut eager = make();
            for (t, e) in [(2.0, 0u32), (2.0, 1), (1.0, 2), (2.0, 3)] {
                eager.push(Time(t), e);
            }
            // Streaming: seqs 0..4 reserved, events fed in late and out of
            // seq order.
            let mut streaming = make();
            streaming.advance_seq_to(4);
            streaming.push_with_seq(Time(1.0), 2, 2);
            assert_eq!(streaming.pop(), Some((Time(1.0), 2)));
            assert_eq!(eager.pop(), Some((Time(1.0), 2)));
            streaming.push_with_seq(Time(2.0), 3, 3);
            streaming.push_with_seq(Time(2.0), 0, 0);
            streaming.push_with_seq(Time(2.0), 1, 1);
            for _ in 0..3 {
                assert_eq!(streaming.pop(), eager.pop());
            }
            assert!(streaming.pop().is_none() && eager.pop().is_none());
        }
    }

    #[test]
    #[should_panic(expected = "not below the reserved floor")]
    fn push_with_seq_rejects_unreserved() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push_with_seq(Time(1.0), 0, ());
    }

    #[test]
    fn calendar_handles_past_horizon_and_negative_times() {
        let mut q = EventQueue::with_horizon(Time(10.0), 64);
        q.push(Time(25.0), 2); // past the horizon → overflow bucket
        q.push(Time(-1.0), 0); // clamps to bucket 0
        q.push(Time(5.0), 1);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    /// Reference model: a sorted vector popped from the front. Both
    /// backends must agree with it on interleaved push/pop sequences
    /// (FIFO tie-breaking included).
    #[test]
    fn backends_agree_with_reference_model() {
        // Deterministic pseudo-random op stream.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..50u64 {
            let mut heap_q: EventQueue<u64> = EventQueue::new();
            let mut cal_q: EventQueue<u64> = EventQueue::with_horizon(Time(64.0), 128);
            let mut reference: Vec<(Time, u64, u64)> = Vec::new(); // (at, seq, payload)
            let mut seq = 0u64;
            let mut payload = 0u64;
            for _ in 0..400 {
                let r = next();
                if r % 3 != 0 || reference.is_empty() {
                    // Coarse times force plenty of exact ties.
                    let at = Time(((r / 7) % 64) as f64);
                    heap_q.push(at, payload);
                    cal_q.push(at, payload);
                    reference.push((at, seq, payload));
                    seq += 1;
                    payload += 1;
                } else {
                    reference.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
                    let (at, _, want) = reference.remove(0);
                    assert_eq!(heap_q.pop(), Some((at, want)), "trial {trial}");
                    assert_eq!(cal_q.pop(), Some((at, want)), "trial {trial}");
                }
                assert_eq!(heap_q.len(), reference.len());
                assert_eq!(cal_q.len(), reference.len());
            }
            // Drain; all three must agree to the end.
            reference.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            for (at, _, want) in reference {
                assert_eq!(heap_q.pop(), Some((at, want)), "trial {trial}");
                assert_eq!(cal_q.pop(), Some((at, want)), "trial {trial}");
            }
            assert!(heap_q.pop().is_none());
            assert!(cal_q.pop().is_none());
        }
    }
}
