//! A stable discrete-event queue.
//!
//! Events fire in time order; ties break by insertion order, which makes
//! whole simulations deterministic given seeds. The paper assumes "every
//! join and departure event occurs at a unique point in time" with the
//! server ordering apparent ties (Section 2.1.1) — the insertion sequence
//! number plays that role here.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use sybil_sim::queue::EventQueue;
/// use sybil_sim::time::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time(2.0), "b");
/// q.push(Time(1.0), "a");
/// q.push(Time(2.0), "c");
/// assert_eq!(q.pop(), Some((Time(1.0), "a")));
/// assert_eq!(q.pop(), Some((Time(2.0), "b")));
/// assert_eq!(q.pop(), Some((Time(2.0), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Clone, Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Creates an empty queue with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(n), seq: 0 }
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Extend<(Time, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (Time, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(Time(3.0), 30);
        q.push(Time(1.0), 10);
        q.push(Time(1.0), 11);
        q.push(Time(2.0), 20);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 11, 20, 30]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time(5.0), ());
        assert_eq!(q.peek_time(), Some(Time(5.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn extend_works() {
        let mut q = EventQueue::new();
        q.extend(vec![(Time(2.0), 'b'), (Time(1.0), 'a')]);
        assert_eq!(q.pop().unwrap().1, 'a');
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time(10.0), 1);
        q.push(Time(5.0), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(Time(7.0), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.pop().is_none());
    }
}
