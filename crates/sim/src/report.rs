//! Simulation outputs.

use crate::cost::Ledger;
use crate::time::Time;

/// A point-in-time sample of system state, for timeline plots.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimelinePoint {
    /// Sample time.
    pub at: Time,
    /// Total membership.
    pub members: u64,
    /// Sybil members (ground truth).
    pub bad: u64,
    /// Cumulative good spending.
    pub good_spend: f64,
    /// Cumulative adversary spending.
    pub adv_spend: f64,
}

/// A join-rate estimate produced by the defense's estimator over an interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EstimateRecord {
    /// Interval start.
    pub start: Time,
    /// Interval end (when the estimate was set).
    pub end: Time,
    /// Estimated good join rate (IDs/second).
    pub estimate: f64,
}

/// Everything a simulation run produces.
///
/// `PartialEq` compares every field bit-for-bit (floats included): two
/// reports are equal only if the runs were observably identical, which is
/// what the streaming-equivalence tests assert.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Defense name.
    pub defense: String,
    /// Adversary strategy name.
    pub adversary: String,
    /// Simulated horizon in seconds.
    pub horizon: f64,
    /// Full cost ledger.
    pub ledger: Ledger,
    /// Good IDs admitted over the run.
    pub good_joins_admitted: u64,
    /// Good IDs refused entry (classifier false positives).
    pub good_joins_refused: u64,
    /// Good departures processed.
    pub good_departures: u64,
    /// Sybil IDs admitted over the run.
    pub bad_joins_admitted: u64,
    /// Sybil join attempts (including classifier-refused ones).
    pub bad_join_attempts: u64,
    /// Purges executed.
    pub purges: u64,
    /// Purges skipped by Heuristic 3.
    pub purges_skipped: u64,
    /// Maximum instantaneous fraction of Sybil members observed.
    pub max_bad_fraction: f64,
    /// Time-weighted mean fraction of Sybil members.
    pub mean_bad_fraction: f64,
    /// Membership size at the end of the run.
    pub final_members: u64,
    /// Sybil members at the end of the run.
    pub final_bad: u64,
    /// Events dispatched by the engine over the run (the denominator of
    /// engine-throughput measurements).
    pub events_processed: u64,
    /// Largest number of pending events the queue ever held. With streaming
    /// workload scheduling this is O(active sessions), not O(workload).
    pub peak_queue_len: usize,
    /// Times an adversary wakeup was cut off by
    /// [`crate::engine::SimConfig::max_adversary_turn_rounds`]. Nonzero
    /// values mean adversary turns were truncated and spend totals may
    /// undercount what the strategy wanted to do.
    pub adversary_turn_truncations: u64,
    /// Times an instant-purge cascade was cut off by
    /// [`crate::engine::SimConfig::max_purge_cascade_rounds`].
    pub purge_cascade_truncations: u64,
    /// Times the recorded timeline hit
    /// [`crate::engine::SimConfig::max_timeline_points`] and was halved
    /// (each halving doubles the effective sampling interval).
    pub timeline_decimations: u64,
    /// Admitted good joins whose times were *not* recorded because
    /// [`crate::engine::SimConfig::max_good_join_times`] was reached.
    pub good_join_times_dropped: u64,
    /// Resident bytes of the packed admission map at the end of the run
    /// (segments are only allocated for sessions actually touched).
    pub admission_bytes: usize,
    /// Resident bytes held by the workload stream (for a disk-backed
    /// workload this is two read buffers; for an in-memory workload it is
    /// the retained schedule vectors).
    pub workload_stream_bytes: usize,
    /// Estimator updates logged by the defense (empty when not applicable).
    pub estimates: Vec<EstimateRecord>,
    /// Times at which purges completed (iteration boundaries).
    pub purge_times: Vec<Time>,
    /// Join times of admitted good IDs (populated when
    /// [`crate::engine::SimConfig::record_good_joins`] is set).
    pub good_join_times: Vec<Time>,
    /// Periodic timeline samples (populated when
    /// [`crate::engine::SimConfig::timeline_resolution`] is set).
    pub timeline: Vec<TimelinePoint>,
}

impl SimReport {
    /// Good spend rate `A`: total good resource burning per second.
    pub fn good_spend_rate(&self) -> f64 {
        self.ledger.good_total().value() / self.horizon
    }

    /// Adversary spend rate: total adversary resource burning per second.
    pub fn adv_spend_rate(&self) -> f64 {
        self.ledger.adversary_total().value() / self.horizon
    }

    /// Good join rate `J` over the run (admitted IDs per second).
    pub fn good_join_rate(&self) -> f64 {
        self.good_joins_admitted as f64 / self.horizon
    }

    /// True if the `< bound` bad-fraction invariant held throughout.
    pub fn invariant_held(&self, bound: f64) -> bool {
        self.max_bad_fraction < bound
    }
}
