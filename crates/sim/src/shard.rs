//! Sharded shared-nothing workload replay.
//!
//! A [`ShardedWorkload`] splits one workload's ID space across `S` shards.
//! Each shard owns its slice of the schedule — the sessions and initial
//! departures whose global index is congruent to the shard id mod `S` —
//! decodes its records with a private cursor, orders its slice's events
//! with a private [`EventQueue`], and emits them as bounded batches of
//! pre-ordered `(time, seq, event)` triples over a channel. No shard
//! shares mutable state with any other.
//!
//! The coordinator side is [`ShardedStream`]: a *merged*
//! [`WorkloadStream`] the engine k-way-merges against its internal queue
//! (see `Simulation::run_merged`). The canonical cross-shard merge order
//! is the global `(time, seq)` key, where `seq` is the exact
//! eager-equivalent sequence number the monolithic scheduler would have
//! assigned — a pure function of the workload, independent of `S`. Batch
//! boundaries (the "epochs" at which messages are drained) therefore
//! never influence ordering: an `S`-shard run replays the byte-for-byte
//! identical event sequence as a 1-shard run, and the engine's `SimReport`
//! is bit-identical for every defense and adversary strategy.
//!
//! # What lives where
//!
//! Shards own decode + ordering *and* — since the defense state was
//! sharded (see [`shard_state`](crate::shard_state)) — the per-ID
//! admission verdicts and spend ledgers of the identities congruent to
//! their index: the engine routes each admission outcome to shard
//! `id mod S` and folds the per-shard ledgers back in canonical `0..S`
//! order at epoch boundaries. Every per-ID charge is rounded to the
//! integer ledger grid *before* routing, so the fold is exact integer
//! addition and float non-associativity cannot leak shard structure
//! into results. The defense instance itself and the global aggregates
//! it consumes stay coordinator-side, fed by the epoch reductions
//! rather than coordinator-wide scans.
//!
//! # Failure semantics
//!
//! Shard workers run under `catch_unwind` (the `run_parallel_catch`
//! quarantine semantics from `sybil-exp`): a panicking shard sends a final
//! [`ShardMsg::Panicked`] instead of leaving its peers deadlocked on a
//! full or silent channel, and the coordinator re-panics with the shard's
//! message — inside an experiment pool that quarantines the cell. Dropping
//! the stream early (coordinator panic or a run cut short) drops the
//! receivers first, which unblocks any worker parked on a full channel
//! (its `send` fails and it exits cleanly), then joins every worker.
//!
//! # One shard runs inline
//!
//! `S = 1` spawns no thread at all: the single producer is polled pull-style
//! from `next_event`, preserving the monolithic engine's
//! single-threaded performance profile, so "1 shard" in benchmarks is an
//! honest baseline.

use crate::queue::EventQueue;
use crate::time::Time;
use crate::workload::{
    Session, SessionIndex, StreamEvent, Workload, WorkloadSource, WorkloadStream,
};
use crate::workload_io::{DiskRecords, DiskWorkload};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Events per cross-shard message batch (one "epoch" of a shard's feed).
const BATCH_EVENTS: usize = 4096;
/// Batches a shard may run ahead of the coordinator before its `send`
/// blocks — bounds per-shard buffering at `CHANNEL_BATCHES × BATCH_EVENTS`
/// events.
const CHANNEL_BATCHES: usize = 4;

/// A workload wrapper that replays its schedule through `S` shared-nothing
/// shards (see the module docs).
///
/// Wraps either a resident [`Workload`] or a [`DiskWorkload`]; implements
/// [`WorkloadSource`], so it drops into `Simulation::new` wherever the
/// underlying workload did.
#[derive(Clone, Debug)]
pub struct ShardedWorkload {
    input: ShardInput,
    shards: usize,
}

#[derive(Clone, Debug)]
enum ShardInput {
    Memory(Arc<MemoryInput>),
    Disk(DiskWorkload),
}

/// Canonicalized resident schedule shared (read-only) by memory shards.
#[derive(Debug)]
struct MemoryInput {
    /// Sessions stably sorted by join time (what [`Workload::new`]
    /// produces; hand-built unsorted workloads are canonicalized here, so
    /// their session *indices* are the sorted positions).
    sessions: Vec<Session>,
    /// Initial departures sorted ascending — the on-disk order, so memory
    /// and disk sharding assign identical sequence numbers.
    initial: Vec<Time>,
}

impl ShardedWorkload {
    /// Shards a resident workload.
    ///
    /// The schedule is canonicalized first (sessions stably join-sorted,
    /// initial departures ascending — exactly the on-disk order), so a
    /// hand-built unsorted workload replays with sorted-position session
    /// indices. Workloads from [`Workload::new`] or generators are already
    /// sorted and replay with unchanged indices.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn from_workload(workload: Workload, shards: usize) -> ShardedWorkload {
        assert!(shards >= 1, "at least one shard required");
        let mut sessions = workload.sessions;
        sessions.sort_by_key(|a| a.join);
        let mut initial = workload.initial_departures;
        initial.sort();
        ShardedWorkload {
            input: ShardInput::Memory(Arc::new(MemoryInput { sessions, initial })),
            shards,
        }
    }

    /// Shards a disk-backed workload: every shard opens its own buffered
    /// cursors over the shared file, so shards never contend on a reader.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn from_disk(workload: DiskWorkload, shards: usize) -> ShardedWorkload {
        assert!(shards >= 1, "at least one shard required");
        ShardedWorkload { input: ShardInput::Disk(workload), shards }
    }

    /// The shard count this workload replays with.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

impl WorkloadSource for ShardedWorkload {
    type Stream = ShardedStream;

    fn initial_size(&self) -> u64 {
        match &self.input {
            ShardInput::Memory(m) => m.initial.len() as u64,
            ShardInput::Disk(d) => d.initial_size(),
        }
    }

    fn session_count(&self) -> u64 {
        match &self.input {
            ShardInput::Memory(m) => m.sessions.len() as u64,
            ShardInput::Disk(d) => d.session_count(),
        }
    }

    /// Defense state shards alongside the workload: session `i`'s
    /// admission slice and ledger delta live on shard `i mod S`, the same
    /// congruence that owns its decode.
    fn state_shards(&self) -> usize {
        self.shards
    }

    fn into_stream(self, horizon: Time) -> ShardedStream {
        // Seq totals are computed once, coordinator-side, with the same
        // early-exit passes the unsharded streams use.
        let (session_seqs, initial_in_horizon) = match &self.input {
            ShardInput::Memory(m) => {
                let mut seqs = 0u64;
                for s in &m.sessions {
                    if s.join > horizon {
                        break; // Sorted: the rest are out too.
                    }
                    seqs += 1 + u64::from(s.depart <= horizon);
                }
                (seqs, m.initial.partition_point(|d| *d <= horizon) as u64)
            }
            ShardInput::Disk(d) => {
                let scan = d.prescan(horizon);
                (scan.session_seqs, scan.initial_in_horizon)
            }
        };
        let seq_floor = session_seqs + initial_in_horizon;
        let shards = self.shards;
        let expected_per_shard =
            ((session_seqs + initial_in_horizon) as usize / shards).saturating_add(64);
        let producer = |shard: usize| -> ShardProducer<AnyRecords> {
            let records = match &self.input {
                ShardInput::Memory(m) => AnyRecords::Memory(MemoryRecords {
                    input: Arc::clone(m),
                    session_pos: 0,
                    initial_pos: 0,
                }),
                ShardInput::Disk(d) => AnyRecords::Disk(
                    d.records()
                        .unwrap_or_else(|e| panic!("workload file {}: {e}", d.path().display())),
                ),
            };
            ShardProducer::new(
                records,
                horizon,
                shard,
                shards,
                session_seqs,
                initial_in_horizon,
                expected_per_shard,
            )
        };
        let feeds = if shards == 1 {
            vec![Feed::Inline(Box::new(producer(0)))]
        } else {
            (0..shards).map(|k| Feed::Channel(spawn_shard(producer(k), k))).collect()
        };
        ShardedStream { heads: vec![None; feeds.len()], feeds, seq_floor }
    }
}

/// Record cursor a shard producer decodes its schedule from; exactly the
/// stored order, no filtering — the producer applies horizon and
/// ownership.
trait ShardRecords {
    /// Next session record in join-sorted order.
    fn next_session(&mut self) -> Option<Session>;
    /// Next initial departure in ascending order.
    fn next_initial(&mut self) -> Option<Time>;
}

struct MemoryRecords {
    input: Arc<MemoryInput>,
    session_pos: usize,
    initial_pos: usize,
}

impl ShardRecords for MemoryRecords {
    fn next_session(&mut self) -> Option<Session> {
        let s = self.input.sessions.get(self.session_pos).copied()?;
        self.session_pos += 1;
        Some(s)
    }

    fn next_initial(&mut self) -> Option<Time> {
        let d = self.input.initial.get(self.initial_pos).copied()?;
        self.initial_pos += 1;
        Some(d)
    }
}

impl ShardRecords for DiskRecords {
    fn next_session(&mut self) -> Option<Session> {
        DiskRecords::next_session(self)
    }

    fn next_initial(&mut self) -> Option<Time> {
        DiskRecords::next_initial(self)
    }
}

/// The two production cursor types, statically dispatched.
enum AnyRecords {
    Memory(MemoryRecords),
    Disk(DiskRecords),
}

impl ShardRecords for AnyRecords {
    fn next_session(&mut self) -> Option<Session> {
        match self {
            AnyRecords::Memory(m) => m.next_session(),
            AnyRecords::Disk(d) => d.next_session(),
        }
    }

    fn next_initial(&mut self) -> Option<Time> {
        match self {
            AnyRecords::Memory(m) => m.next_initial(),
            AnyRecords::Disk(d) => d.next_initial(),
        }
    }
}

/// One pre-ordered workload event crossing a shard boundary.
#[derive(Clone, Copy, Debug)]
struct FeedItem {
    at: Time,
    seq: u64,
    event: StreamEvent,
}

/// What a shard worker sends its coordinator.
enum ShardMsg {
    /// The next batch of pre-ordered events (never empty).
    Batch(Vec<FeedItem>),
    /// The shard's slice is exhausted; no further messages follow.
    Done,
    /// The worker panicked; the payload is the panic message. No further
    /// messages follow. The coordinator re-panics with it, so a pool
    /// running the cell under `run_parallel_catch` quarantines it.
    Panicked(String),
}

/// One shard's replay state: decodes the full record stream, keeps the
/// slice it owns (global index ≡ shard mod shards), and yields that
/// slice's events in global `(time, seq)` order.
///
/// Mirrors the monolithic engine's streaming scheduler exactly: one
/// pending join at a time, its departure queued when the join pops,
/// initial departures streamed alongside — so the per-shard queue stays at
/// O(active own sessions).
struct ShardProducer<C> {
    records: C,
    horizon: Time,
    shard: u64,
    shards: u64,
    /// Global index of the next session record to decode.
    next_index: u64,
    /// Global sequence number of the next session event.
    next_seq: u64,
    sessions_done: bool,
    /// Sorted rank of the next initial-departure record to decode.
    initial_rank: u64,
    /// In-horizon initial departures (global, from the pre-scan).
    initial_in_horizon: u64,
    /// First initial-departure seq (= total session seqs).
    initial_seq_base: u64,
    queue: EventQueue<StreamEvent>,
    /// Departure of the own session whose join is currently queued, if in
    /// horizon: `(depart, seq, index, join)`.
    pending_depart: Option<(Time, u64, SessionIndex, Time)>,
}

impl<C: ShardRecords> ShardProducer<C> {
    fn new(
        records: C,
        horizon: Time,
        shard: usize,
        shards: usize,
        session_seqs: u64,
        initial_in_horizon: u64,
        expected_events: usize,
    ) -> Self {
        let mut p = ShardProducer {
            records,
            horizon,
            shard: shard as u64,
            shards: shards as u64,
            next_index: 0,
            next_seq: 0,
            sessions_done: false,
            initial_rank: 0,
            initial_in_horizon,
            initial_seq_base: session_seqs,
            queue: EventQueue::with_horizon(horizon, expected_events),
            pending_depart: None,
        };
        p.queue.advance_seq_to(session_seqs + initial_in_horizon);
        p.stream_next_own_session();
        p.stream_next_own_initial();
        p
    }

    /// Decodes records forward — assigning every session its global index
    /// and seq, owned or not — until the next *own* in-horizon join is
    /// queued or the in-horizon schedule ends.
    fn stream_next_own_session(&mut self) {
        while !self.sessions_done {
            let Some(s) = self.records.next_session() else {
                self.sessions_done = true;
                return;
            };
            if s.join > self.horizon {
                self.sessions_done = true; // Sorted: the rest are out too.
                return;
            }
            let index = self.next_index;
            self.next_index += 1;
            let join_seq = self.next_seq;
            let departs_in = s.depart <= self.horizon;
            self.next_seq += 1 + u64::from(departs_in);
            if index % self.shards == self.shard {
                self.pending_depart =
                    departs_in.then_some((s.depart, join_seq + 1, index as SessionIndex, s.join));
                self.queue.push_with_seq(
                    s.join,
                    join_seq,
                    StreamEvent::Join(index as SessionIndex),
                );
                return;
            }
        }
    }

    /// Advances the initial-departure cursor to the next *own* record and
    /// queues it (seqs are the sorted rank offset past all session seqs,
    /// as on disk).
    fn stream_next_own_initial(&mut self) {
        while self.initial_rank < self.initial_in_horizon {
            let d = self
                .records
                .next_initial()
                .expect("pre-scan counted more in-horizon initial departures than stored");
            let rank = self.initial_rank;
            self.initial_rank += 1;
            if rank % self.shards == self.shard {
                self.queue.push_with_seq(
                    d,
                    self.initial_seq_base + rank,
                    StreamEvent::InitialDepart,
                );
                return;
            }
        }
    }

    /// Next event of this shard's slice, in global `(time, seq)` order.
    fn next(&mut self) -> Option<FeedItem> {
        let (at, seq, event) = self.queue.pop_keyed()?;
        match event {
            StreamEvent::Join(_) => {
                // Queue this join's departure first (its seq is join+1,
                // so or within the same timestamp it stays ordered), then
                // the next own join — the monolithic scheduler's order.
                if let Some((d_at, d_seq, i, joined_at)) = self.pending_depart.take() {
                    self.queue.push_with_seq(d_at, d_seq, StreamEvent::Depart(i, joined_at));
                }
                self.stream_next_own_session();
            }
            StreamEvent::InitialDepart => self.stream_next_own_initial(),
            StreamEvent::Depart(..) => {}
        }
        Some(FeedItem { at, seq, event })
    }
}

/// Worker loop: batches the producer's events into [`ShardMsg`]s. A failed
/// `send` means the coordinator dropped the stream — that is a clean stop,
/// not an error.
///
/// Batch buffers are pooled: the coordinator sends each spent (cleared)
/// `Vec` back over `recycle`, and the worker prefers a recycled buffer
/// over a fresh allocation. In steady state the pool converges to the
/// channel depth plus the two in-flight buffers, so a shard's entire feed
/// reuses a handful of `Vec`s instead of allocating one per 4096 events.
/// Both ends use the non-blocking `try_*` calls, so the recycle path can
/// never deadlock or stall either side — a miss just falls back to
/// allocation (worker) or dropping the buffer (coordinator).
fn produce_batches<C: ShardRecords>(
    mut producer: ShardProducer<C>,
    tx: SyncSender<ShardMsg>,
    recycle: Receiver<Vec<FeedItem>>,
) {
    let mut batch = Vec::with_capacity(BATCH_EVENTS);
    while let Some(item) = producer.next() {
        batch.push(item);
        if batch.len() >= BATCH_EVENTS {
            if tx.send(ShardMsg::Batch(std::mem::take(&mut batch))).is_err() {
                return;
            }
            batch = recycle.try_recv().unwrap_or_else(|_| Vec::with_capacity(BATCH_EVENTS));
        }
    }
    if !batch.is_empty() && tx.send(ShardMsg::Batch(batch)).is_err() {
        return;
    }
    let _ = tx.send(ShardMsg::Done);
}

/// Extracts a human-readable panic message (the `run_parallel_catch`
/// convention).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// Spawns one shard worker under `catch_unwind` isolation.
fn spawn_shard<C: ShardRecords + Send + 'static>(
    producer: ShardProducer<C>,
    shard: usize,
) -> ChannelFeed {
    let (tx, rx) = std::sync::mpsc::sync_channel::<ShardMsg>(CHANNEL_BATCHES);
    // Spent batch buffers flow back to the worker here. Depth matches the
    // data channel: the coordinator can never hold more spent buffers than
    // batches it has received, so `try_send` only misses if the worker has
    // already exited (then the buffer is simply dropped).
    let (recycle_tx, recycle_rx) = std::sync::mpsc::sync_channel::<Vec<FeedItem>>(CHANNEL_BATCHES);
    let panic_tx = tx.clone();
    let handle = std::thread::Builder::new()
        .name(format!("sybil-shard-{shard}"))
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                produce_batches(producer, tx, recycle_rx)
            }));
            if let Err(payload) = result {
                // The quarantine path: surface the panic as a message so
                // the coordinator fails loudly instead of its peers
                // deadlocking on a channel that will never fill.
                let _ = panic_tx.send(ShardMsg::Panicked(panic_message(payload.as_ref())));
            }
        })
        .expect("spawn shard worker thread");
    ChannelFeed {
        rx: Some(rx),
        recycle_tx,
        batch: Vec::new(),
        head: 0,
        done: false,
        shard,
        handle: Some(handle),
    }
}

/// One shard's feed on the coordinator side.
enum Feed {
    /// `S = 1`: the producer is polled inline, no thread or channel.
    Inline(Box<ShardProducer<AnyRecords>>),
    /// `S ≥ 2`: a worker thread feeding batches over a bounded channel.
    Channel(ChannelFeed),
}

struct ChannelFeed {
    rx: Option<Receiver<ShardMsg>>,
    /// Returns spent batch buffers to the worker (see [`produce_batches`]).
    recycle_tx: SyncSender<Vec<FeedItem>>,
    /// The in-flight batch, read through `head`. An owned `Vec` rather
    /// than an `IntoIter` so the buffer survives being drained and can be
    /// recycled ([`FeedItem`] is `Copy`, so indexed reads are free).
    batch: Vec<FeedItem>,
    head: usize,
    done: bool,
    shard: usize,
    handle: Option<JoinHandle<()>>,
}

impl ChannelFeed {
    /// Next item of this shard's feed: drains the current batch, then
    /// blocks for the next message.
    ///
    /// # Panics
    ///
    /// Panics if the shard reported a panic or died without `Done` — the
    /// coordinator's run dies with it (and a surrounding
    /// `run_parallel_catch` pool quarantines the cell).
    fn next(&mut self) -> Option<FeedItem> {
        loop {
            if self.done {
                return None;
            }
            if let Some(item) = self.batch.get(self.head).copied() {
                self.head += 1;
                return Some(item);
            }
            let rx = self.rx.as_ref().expect("receiver live until done");
            match rx.recv() {
                Ok(ShardMsg::Batch(items)) => {
                    let mut spent = std::mem::replace(&mut self.batch, items);
                    self.head = 0;
                    if spent.capacity() > 0 {
                        spent.clear();
                        let _ = self.recycle_tx.try_send(spent);
                    }
                }
                Ok(ShardMsg::Done) => {
                    self.done = true;
                    self.rx = None;
                }
                Ok(ShardMsg::Panicked(msg)) => {
                    self.done = true;
                    self.rx = None;
                    panic!("workload shard {} panicked: {msg}", self.shard);
                }
                Err(_) => {
                    self.done = true;
                    self.rx = None;
                    panic!("workload shard {} worker died without reporting", self.shard);
                }
            }
        }
    }
}

impl Drop for ChannelFeed {
    fn drop(&mut self) {
        // Receiver first: a worker parked on a full channel sees the send
        // fail and exits, so the join below cannot deadlock.
        self.rx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The coordinator-side merged stream over `S` shard feeds.
///
/// Holds at most one head item per feed plus one in-flight batch per
/// channel; [`WorkloadStream::next_event`] returns the minimum head by the
/// global `(time, seq)` key. Keys are globally unique, so the merge is a
/// total order — identical for every `S`.
pub struct ShardedStream {
    feeds: Vec<Feed>,
    heads: Vec<Option<FeedItem>>,
    seq_floor: u64,
}

impl WorkloadStream for ShardedStream {
    fn seq_floor(&self) -> u64 {
        self.seq_floor
    }

    fn next_session(&mut self) -> Option<(SessionIndex, Session, u64)> {
        unreachable!("merged streams are consumed via next_event")
    }

    fn next_initial_departure(&mut self) -> Option<(Time, u64)> {
        unreachable!("merged streams are consumed via next_event")
    }

    /// Canonically zero: shard buffers live on worker threads and vary
    /// with scheduling, so charging them here would make a memory *gauge*
    /// shard-count-dependent and break bit-identical reports. The real
    /// bound is `shards × CHANNEL_BATCHES × BATCH_EVENTS` feed items.
    fn resident_bytes(&self) -> usize {
        0
    }

    fn merged(&self) -> bool {
        true
    }

    fn next_event(&mut self) -> Option<(Time, u64, StreamEvent)> {
        let mut best: Option<(usize, (Time, u64))> = None;
        for (k, head) in self.heads.iter_mut().enumerate() {
            if head.is_none() {
                *head = match &mut self.feeds[k] {
                    Feed::Inline(p) => p.next(),
                    Feed::Channel(f) => f.next(),
                };
            }
            if let Some(item) = head {
                let key = (item.at, item.seq);
                if best.is_none_or(|(_, k)| key < k) {
                    best = Some((k, key));
                }
            }
        }
        let (k, _) = best?;
        let item = self.heads[k].take().expect("best head exists");
        Some((item.at, item.seq, item.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        Workload::new(
            vec![Time(7.0), Time(2.0), Time(50.0)],
            vec![
                Session::new(Time(1.0), Time(3.0)),
                Session::new(Time(2.0), Time(99.0)),
                Session::new(Time(2.0), Time(4.0)),
                Session::new(Time(30.0), Time(31.0)),
            ],
        )
    }

    /// All shard counts must yield the identical `(time, seq, event)`
    /// triple sequence — and it must be the eager scheduler's order.
    #[test]
    fn shard_counts_agree_on_the_event_sequence() {
        let horizon = Time(10.0);
        let reference: Vec<(Time, u64, StreamEvent)> = {
            let mut s = ShardedWorkload::from_workload(workload(), 1).into_stream(horizon);
            std::iter::from_fn(move || s.next_event()).collect()
        };
        // Joins at 1, 2, 2 (seqs 0, 2, 3); departs at 3, 4 (seqs 1, 4);
        // initial departures at 2, 7 (seqs 5, 6) — 7 in-horizon events.
        assert_eq!(reference.len(), 7);
        assert_eq!(reference[0], (Time(1.0), 0, StreamEvent::Join(0)));
        let mut sorted = reference.clone();
        sorted.sort_by_key(|a| (a.0, a.1));
        assert_eq!(reference, sorted, "merge must yield global (time, seq) order");
        for shards in [2, 3, 7, 16] {
            let mut s = ShardedWorkload::from_workload(workload(), shards).into_stream(horizon);
            let got: Vec<_> = std::iter::from_fn(move || s.next_event()).collect();
            assert_eq!(got, reference, "{shards} shards");
        }
    }

    /// A cursor that panics partway through its records, to exercise the
    /// quarantine path end to end.
    struct PanickingRecords {
        yielded: usize,
    }

    impl ShardRecords for PanickingRecords {
        fn next_session(&mut self) -> Option<Session> {
            if self.yielded >= 2 {
                panic!("synthetic shard fault");
            }
            self.yielded += 1;
            Some(Session::new(Time(self.yielded as f64), Time(self.yielded as f64 + 0.5)))
        }

        fn next_initial(&mut self) -> Option<Time> {
            None
        }
    }

    /// A panicking shard must surface as a coordinator panic carrying the
    /// shard's message — promptly, with no deadlock — and the stream must
    /// still join its workers on drop.
    #[test]
    fn shard_panic_propagates_instead_of_deadlocking() {
        let result = std::panic::catch_unwind(|| {
            let producer = ShardProducer::new(
                PanickingRecords { yielded: 0 },
                Time(100.0),
                0,
                1,
                100, // claim more seqs than the cursor will yield
                0,
                64,
            );
            let feed = spawn_shard(producer, 0);
            let mut stream = ShardedStream {
                feeds: vec![Feed::Channel(feed)],
                heads: vec![None],
                seq_floor: 100,
            };
            while stream.next_event().is_some() {}
        });
        let payload = result.expect_err("coordinator must panic");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("shard 0 panicked"), "{msg}");
        assert!(msg.contains("synthetic shard fault"), "{msg}");
    }

    /// Dropping the stream mid-run (without draining) must not deadlock on
    /// workers blocked on a full channel: drop order unblocks their sends.
    #[test]
    fn early_drop_joins_blocked_workers() {
        // A workload big enough that workers outpace a coordinator that
        // never reads: they park on the bounded channel.
        let sessions =
            (0..100_000).map(|i| Session::new(Time(i as f64 * 0.001), Time(1000.0))).collect();
        let w = Workload::new(vec![], sessions);
        let mut stream = ShardedWorkload::from_workload(w, 3).into_stream(Time(2000.0));
        // Consume a few events, then drop with most of the feed pending.
        for _ in 0..10 {
            stream.next_event();
        }
        drop(stream); // must return (joins all three workers)
    }
}
