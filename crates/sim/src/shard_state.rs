//! Sharded defense state: per-shard admission slices and spend ledgers
//! reduced deterministically at epoch boundaries.
//!
//! PR 7 sharded workload *decode*; the defense's own bookkeeping — the
//! [`AdmissionMap`], the spend [`Ledger`], purge-sweep accounting — still
//! lived on the coordinator. [`ShardedDefenseState`] moves it out: every
//! arrival session `i` is owned by shard `i mod S` (the same ID-congruence
//! layout [`crate::shard::ShardedWorkload`] uses), which holds a local
//! admission slice, a live-session counter, and a per-shard ledger delta.
//! Purge sweeps and periodic charges are distributed to shards as explicit
//! charge messages proportional to their live population, and every
//! [`EPOCH_EVENTS`] processed events each shard emits one bounded
//! [`EpochDelta`] message that the root folds in canonical shard order
//! `0, 1, …, S−1`.
//!
//! # Why totals are bit-identical at every shard count
//!
//! Floating-point addition is not associative, so per-shard `f64` partial
//! sums would make reported spend depend on S. All shard-resident money
//! therefore lives in [`FixedCost`] — a Q64.64 fixed-point integer. Each
//! `f64` charge is rounded to fixed-point *once* (a pure function of the
//! charge value, independent of which shard receives it); after that every
//! sum is exact `i128` arithmetic, which *is* associative, so any grouping
//! of deltas — one shard, thirty-two shards, flushed early or late —
//! folds to the same integer. The single conversion back to `f64` happens
//! at read time (timeline samples, the final report), again independent of
//! S. The reduction is thus a fixed-shape tree: leaves are the per-charge
//! roundings in global event order, and the interior is integer addition,
//! whose shape cannot affect the result.
//!
//! Aggregate sweep costs (purge, periodic) are computed by the defense as
//! one `f64` total. The distribution `per = total / good_charged` (integer
//! division in fixed-point) charges each shard `per × live` and the exact
//! remainder to the root, so the parts always re-sum to the original
//! rounding of the total.

use crate::admission::{self, AdmissionMap, AdmissionState};
use crate::cost::{Cost, Ledger, Purpose};
use crate::defense::{PeriodicReport, PurgeReport};

/// Events between epoch reductions. Matches the workload shards' batch
/// granularity: one bounded message per shard per epoch.
pub const EPOCH_EVENTS: u32 = 4096;

/// A non-negative resource amount in Q64.64 fixed point (64 integer bits,
/// 64 fractional bits, stored in an `i128`).
///
/// Conversion from [`Cost`] multiplies by 2⁶⁴ — exact in `f64` — and
/// rounds once; all subsequent accumulation is exact integer arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct FixedCost(i128);

impl FixedCost {
    /// Zero.
    pub const ZERO: FixedCost = FixedCost(0);

    /// Fractional bits.
    const FRAC_BITS: i32 = 64;

    /// Rounds a [`Cost`] into fixed point. This is the only lossy step in
    /// the ledger pipeline and it happens exactly once per charge,
    /// before any shard routing, so it cannot depend on the shard count.
    pub fn from_cost(cost: Cost) -> FixedCost {
        let v = cost.value();
        debug_assert!(v.is_finite() && v >= 0.0, "charges are finite and non-negative: {v}");
        FixedCost((v * 2f64.powi(Self::FRAC_BITS)).round() as i128)
    }

    /// Converts back to a float [`Cost`] (rounds to nearest).
    pub fn to_cost(self) -> Cost {
        Cost(self.0 as f64 * 2f64.powi(-Self::FRAC_BITS))
    }

    /// True if exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Exact integer division (truncating), used to split an aggregate
    /// sweep charge into per-payer quanta.
    fn div_u64(self, n: u64) -> FixedCost {
        FixedCost(self.0 / n as i128)
    }

    /// Exact scaling of a per-payer quantum by a payer count.
    fn mul_u64(self, n: u64) -> FixedCost {
        FixedCost(self.0 * n as i128)
    }
}

impl std::ops::Add for FixedCost {
    type Output = FixedCost;
    fn add(self, rhs: FixedCost) -> FixedCost {
        FixedCost(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for FixedCost {
    fn add_assign(&mut self, rhs: FixedCost) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for FixedCost {
    type Output = FixedCost;
    fn sub(self, rhs: FixedCost) -> FixedCost {
        FixedCost(self.0 - rhs.0)
    }
}

impl std::ops::SubAssign for FixedCost {
    fn sub_assign(&mut self, rhs: FixedCost) {
        self.0 -= rhs.0;
    }
}

/// A [`Ledger`] with fixed-point balances: payer × purpose, exactly the
/// decomposition the float ledger reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FixedLedger {
    good: [FixedCost; 3],
    adv: [FixedCost; 3],
}

impl FixedLedger {
    fn slot(purpose: Purpose) -> usize {
        match purpose {
            Purpose::Entrance => 0,
            Purpose::Purge => 1,
            Purpose::Periodic => 2,
        }
    }

    /// Records spending by good IDs.
    pub fn charge_good(&mut self, purpose: Purpose, amount: Cost) {
        self.good[Self::slot(purpose)] += FixedCost::from_cost(amount);
    }

    /// Records spending by the adversary.
    pub fn charge_adversary(&mut self, purpose: Purpose, amount: Cost) {
        self.adv[Self::slot(purpose)] += FixedCost::from_cost(amount);
    }

    fn charge_good_fixed(&mut self, purpose: Purpose, amount: FixedCost) {
        debug_assert!(amount >= FixedCost::ZERO, "negative charge");
        self.good[Self::slot(purpose)] += amount;
    }

    /// Folds another ledger into this one (exact).
    pub fn merge(&mut self, other: &FixedLedger) {
        for i in 0..3 {
            self.good[i] += other.good[i];
            self.adv[i] += other.adv[i];
        }
    }

    /// Total burned by good IDs.
    pub fn good_total(&self) -> FixedCost {
        self.good[0] + self.good[1] + self.good[2]
    }

    /// Total burned by the adversary.
    pub fn adversary_total(&self) -> FixedCost {
        self.adv[0] + self.adv[1] + self.adv[2]
    }

    /// Converts each balance to `f64` once, producing the float [`Ledger`]
    /// the report carries. Conversion order is fixed (per-slot), so the
    /// output is a pure function of the integer balances.
    pub fn to_ledger(&self) -> Ledger {
        Ledger::from_parts(self.good.map(FixedCost::to_cost), self.adv.map(FixedCost::to_cost))
    }
}

/// One shard's bounded epoch message: the counters and ledger balances its
/// slice accumulated since the previous reduction. Fixed size regardless
/// of slice population — this is the entire cross-shard contract.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochDelta {
    /// Good joins admitted in this shard's slice this epoch.
    pub good_joins_admitted: u64,
    /// Good joins refused in this shard's slice this epoch.
    pub good_joins_refused: u64,
    /// Departures of admitted sessions in this shard's slice this epoch.
    pub good_departures: u64,
    /// Money movements attributed to this shard this epoch.
    pub ledger: FixedLedger,
}

impl EpochDelta {
    /// Folds `other` into `self` (exact; associative).
    pub fn merge(&mut self, other: &EpochDelta) {
        self.good_joins_admitted += other.good_joins_admitted;
        self.good_joins_refused += other.good_joins_refused;
        self.good_departures += other.good_departures;
        self.ledger.merge(&other.ledger);
    }
}

/// One shard's slice of the defense state.
#[derive(Clone, Debug)]
struct StateShard {
    /// Admission outcomes for sessions `i` with `i mod S == shard`, keyed
    /// by the local index `i / S`.
    admission: AdmissionMap,
    /// Bitset over *global* segment indices this shard has written, so the
    /// report's memory gauge stays a pure function of the touched ID
    /// space, independent of S.
    touched: Vec<u64>,
    /// Admitted-and-not-departed sessions in this slice (the shard's share
    /// of sweep charges is proportional to this).
    live: u64,
    /// The accumulating epoch message.
    delta: EpochDelta,
}

/// Number of sessions `i < n` with `i mod shards == shard`.
fn slice_len(n: u64, shard: usize, shards: usize) -> u64 {
    n.saturating_sub(shard as u64).div_ceil(shards as u64)
}

/// The coordinator's view of defense state partitioned across `S` shards,
/// plus the root accumulator the epoch reduction folds into.
///
/// # Example
///
/// ```
/// use sybil_sim::cost::{Cost, Purpose};
/// use sybil_sim::shard_state::ShardedDefenseState;
///
/// let mut state = ShardedDefenseState::new(100, 4);
/// state.record_good_join(7, true, Cost::ONE); // owned by shard 7 mod 4
/// assert!(state.record_good_depart(7));
/// assert!(!state.record_good_depart(8)); // never admitted
/// assert_eq!(state.good_total(), Cost::ONE);
/// ```
#[derive(Clone, Debug)]
pub struct ShardedDefenseState {
    shards: Vec<StateShard>,
    /// Root accumulator: folded epoch messages plus charges with no single
    /// owning shard (initialization, adversary batches, sweep remainders,
    /// initial-resident departures).
    totals: EpochDelta,
    n_sessions: u64,
    events_since_flush: u32,
    epochs: u64,
}

impl ShardedDefenseState {
    /// Creates state for `n_sessions` arrival sessions partitioned across
    /// `shards` slices.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn new(n_sessions: u64, shards: usize) -> Self {
        assert!(shards >= 1, "at least one state shard required");
        let segments = (n_sessions as usize).div_ceil(admission::SEGMENT_ENTRIES);
        let words = segments.div_ceil(64);
        ShardedDefenseState {
            shards: (0..shards)
                .map(|s| StateShard {
                    admission: AdmissionMap::new(slice_len(n_sessions, s, shards)),
                    touched: vec![0u64; words],
                    live: 0,
                    delta: EpochDelta::default(),
                })
                .collect(),
            totals: EpochDelta::default(),
            n_sessions,
            events_since_flush: 0,
            epochs: 0,
        }
    }

    /// The shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Eagerly allocates every admission segment on every shard slice.
    ///
    /// Called by the engine before the event loop when the workload
    /// source opts in (see `WorkloadSource::preallocate_admission`), so
    /// first-touch segment boxes never allocate mid-loop. The canonical
    /// [`admission_bytes`] gauge is a pure function of the *touched*
    /// bitset and does not move.
    ///
    /// [`admission_bytes`]: ShardedDefenseState::admission_bytes
    pub fn preallocate_admission(&mut self) {
        for shard in &mut self.shards {
            shard.admission.preallocate();
        }
    }

    /// Epoch reductions performed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    fn route(&self, index: u64) -> (usize, u64) {
        let shards = self.shards.len() as u64;
        ((index % shards) as usize, index / shards)
    }

    /// Records a good join's outcome and entrance charge on the owning
    /// shard.
    pub fn record_good_join(&mut self, index: u64, admitted: bool, cost: Cost) {
        let (s, local) = self.route(index);
        let shard = &mut self.shards[s];
        shard.delta.ledger.charge_good(Purpose::Entrance, cost);
        // The engine always writes a non-Pending outcome, so every join
        // marks its global segment as touched.
        let segment = (index as usize) / admission::SEGMENT_ENTRIES;
        shard.touched[segment / 64] |= 1 << (segment % 64);
        if admitted {
            shard.admission.set(local, AdmissionState::Admitted);
            shard.delta.good_joins_admitted += 1;
            shard.live += 1;
        } else {
            shard.admission.set(local, AdmissionState::Refused);
            shard.delta.good_joins_refused += 1;
        }
    }

    /// Records a session's departure on its owning shard. Returns true —
    /// and counts the departure — only if the session was admitted; the
    /// admission verdict lives in the shard's slice, not on the
    /// coordinator.
    pub fn record_good_depart(&mut self, index: u64) -> bool {
        let (s, local) = self.route(index);
        let shard = &mut self.shards[s];
        if shard.admission.get(local) != AdmissionState::Admitted {
            return false;
        }
        shard.live -= 1;
        shard.delta.good_departures += 1;
        true
    }

    /// Records a t=0 resident's departure (root-owned: initial residents
    /// are not arrival sessions and have no owning shard).
    pub fn record_initial_depart(&mut self) {
        self.totals.good_departures += 1;
    }

    /// Charges good spending with no single owning shard (initialization).
    pub fn charge_root_good(&mut self, purpose: Purpose, amount: Cost) {
        self.totals.ledger.charge_good(purpose, amount);
    }

    /// Charges adversary spending. The adversary is one principal, not a
    /// workload session, so its money is always root-owned.
    pub fn charge_root_adversary(&mut self, purpose: Purpose, amount: Cost) {
        self.totals.ledger.charge_adversary(purpose, amount);
    }

    /// Applies a purge sweep: the aggregate good-side cost is distributed
    /// to shards proportional to their live population (exact fixed-point
    /// quanta, remainder to the root), the adversary's retention cost goes
    /// to the root.
    pub fn apply_purge(&mut self, report: &PurgeReport) {
        self.distribute_good(Purpose::Purge, report.good_cost, report.good_charged);
        self.totals.ledger.charge_adversary(Purpose::Purge, report.adv_cost);
    }

    /// Applies a periodic charge, distributed like a purge sweep.
    pub fn apply_periodic(&mut self, report: &PeriodicReport, adv_cost: Cost) {
        self.distribute_good(Purpose::Periodic, report.good_cost, report.good_charged);
        self.totals.ledger.charge_adversary(Purpose::Periodic, adv_cost);
    }

    /// Splits an aggregate sweep charge over `charged` payers into
    /// per-shard messages: shard `s` is charged `⌊total/charged⌋ × live_s`
    /// and the root absorbs the exact remainder (initial residents plus
    /// division slack), so the parts re-sum to `total` exactly.
    fn distribute_good(&mut self, purpose: Purpose, total: Cost, charged: u64) {
        let total = FixedCost::from_cost(total);
        let session_live: u64 = self.shards.iter().map(|s| s.live).sum();
        if charged == 0 || session_live == 0 || total.is_zero() {
            self.totals.ledger.charge_good_fixed(purpose, total);
            return;
        }
        // Session members are a subset of the defense's charged
        // population (which also holds initial residents); the max() guard
        // keeps the split total-preserving even against a defense that
        // under-reports.
        debug_assert!(session_live <= charged, "live {session_live} > charged {charged}");
        let per = total.div_u64(charged.max(session_live));
        let mut remainder = total;
        for shard in &mut self.shards {
            let share = per.mul_u64(shard.live);
            shard.delta.ledger.charge_good_fixed(purpose, share);
            remainder -= share;
        }
        self.totals.ledger.charge_good_fixed(purpose, remainder);
    }

    /// Notes one processed simulation event; every [`EPOCH_EVENTS`]-th
    /// event triggers an epoch reduction. Event counts are shard-count
    /// invariant, so so is the flush schedule (and — because the deltas
    /// are integers — the totals would be identical under *any* schedule).
    pub fn note_event(&mut self) {
        self.events_since_flush += 1;
        if self.events_since_flush >= EPOCH_EVENTS {
            self.flush_epoch();
        }
    }

    /// Reduces: folds every shard's delta into the root in canonical shard
    /// order `0..S`. Exact, so any flush schedule yields the same totals.
    pub fn flush_epoch(&mut self) {
        self.events_since_flush = 0;
        self.epochs += 1;
        for shard in &mut self.shards {
            // `EpochDelta` is `Copy` and fixed-size: taking it resets the
            // shard's accumulator in place and moves the counters by
            // value, so the epoch reduction is allocation-free by
            // construction — no message buffers exist to pool.
            let delta = std::mem::take(&mut shard.delta);
            self.totals.merge(&delta);
        }
    }

    /// Total good spending right now (root plus unflushed deltas, folded
    /// in canonical order; exact, then converted once).
    pub fn good_total(&self) -> Cost {
        let mut total = self.totals.ledger.good_total();
        for shard in &self.shards {
            total += shard.delta.ledger.good_total();
        }
        total.to_cost()
    }

    /// Total adversary spending right now.
    pub fn adversary_total(&self) -> Cost {
        let mut total = self.totals.ledger.adversary_total();
        for shard in &self.shards {
            total += shard.delta.ledger.adversary_total();
        }
        total.to_cost()
    }

    /// Resident bytes of the admission state, reported as the canonical
    /// shard-count-invariant gauge: the union of touched *global* segments
    /// times the segment payload, plus the global directory. At S = 1 this
    /// equals the monolithic [`AdmissionMap::allocated_bytes`] exactly.
    pub fn admission_bytes(&self) -> usize {
        let words = self.shards[0].touched.len();
        let mut touched = 0usize;
        for w in 0..words {
            let mut union = 0u64;
            for shard in &self.shards {
                union |= shard.touched[w];
            }
            touched += union.count_ones() as usize;
        }
        admission::canonical_bytes(self.n_sessions, touched)
    }

    /// Final reduction: flushes the last partial epoch and seals the state
    /// into the report-facing ledger and counters.
    pub fn finalize(mut self) -> SealedState {
        let admission_bytes = self.admission_bytes();
        self.flush_epoch();
        SealedState {
            ledger: self.totals.ledger.to_ledger(),
            good_joins_admitted: self.totals.good_joins_admitted,
            good_joins_refused: self.totals.good_joins_refused,
            good_departures: self.totals.good_departures,
            admission_bytes,
        }
    }
}

/// The fully reduced state a finished run reports.
#[derive(Clone, Debug)]
pub struct SealedState {
    /// The float ledger the report carries.
    pub ledger: Ledger,
    /// Good joins admitted, over all shards.
    pub good_joins_admitted: u64,
    /// Good joins refused, over all shards.
    pub good_joins_refused: u64,
    /// Departures counted (admitted sessions plus initial residents).
    pub good_departures: u64,
    /// Canonical admission-state memory gauge.
    pub admission_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_is_exact_on_dyadic_values() {
        for v in [0.0, 1.0, 1.5, 150.0, 0.25, 1e7] {
            assert_eq!(FixedCost::from_cost(Cost(v)).to_cost(), Cost(v));
        }
        let mut sum = FixedCost::ZERO;
        for _ in 0..150 {
            sum += FixedCost::from_cost(Cost::ONE);
        }
        assert_eq!(sum.to_cost(), Cost(150.0));
    }

    #[test]
    fn fixed_ledger_round_trips_through_the_float_ledger() {
        let mut fl = FixedLedger::default();
        fl.charge_good(Purpose::Entrance, Cost(2.0));
        fl.charge_good(Purpose::Purge, Cost(3.0));
        fl.charge_good(Purpose::Periodic, Cost(5.0));
        fl.charge_adversary(Purpose::Entrance, Cost(7.0));
        fl.charge_adversary(Purpose::Purge, Cost(11.0));
        fl.charge_adversary(Purpose::Periodic, Cost(13.0));
        let l = fl.to_ledger();
        assert_eq!(l.good_entrance(), Cost(2.0));
        assert_eq!(l.good_purge(), Cost(3.0));
        assert_eq!(l.good_periodic(), Cost(5.0));
        assert_eq!(l.adversary_entrance(), Cost(7.0));
        assert_eq!(l.adversary_purge(), Cost(11.0));
        assert_eq!(l.adversary_periodic(), Cost(13.0));
        assert_eq!(fl.good_total().to_cost(), Cost(10.0));
        assert_eq!(fl.adversary_total().to_cost(), Cost(31.0));
    }

    /// Replays the same op script at several shard counts with different
    /// flush schedules; every observable must be bit-identical.
    #[test]
    fn totals_are_shard_count_invariant() {
        let n = 40_000u64; // several segments
        let run = |shards: usize, flush_every: usize| {
            let mut st = ShardedDefenseState::new(n, shards);
            st.charge_root_good(Purpose::Entrance, Cost(17.25));
            st.charge_root_adversary(Purpose::Entrance, Cost(3.5));
            for (k, i) in (0..n).step_by(11).enumerate() {
                // A non-dyadic cost exercises the single-rounding path.
                st.record_good_join(i, i % 3 != 0, Cost(1.0 / 3.0));
                if i % 5 == 0 {
                    st.record_good_depart(i);
                }
                if k % flush_every == 0 {
                    st.flush_epoch();
                }
            }
            st.record_initial_depart();
            st.apply_purge(&PurgeReport {
                good_cost: Cost(1234.567),
                adv_cost: Cost(89.01),
                bad_removed: 4,
                skipped: false,
                good_charged: 3000,
            });
            st.apply_periodic(
                &PeriodicReport { good_cost: Cost(0.1), bad_dropped: 0, good_charged: 2500 },
                Cost(2.5),
            );
            let good = st.good_total();
            let adv = st.adversary_total();
            let sealed = st.finalize();
            (
                good,
                adv,
                sealed.ledger,
                sealed.good_joins_admitted,
                sealed.good_joins_refused,
                sealed.good_departures,
                sealed.admission_bytes,
            )
        };
        let baseline = run(1, 7);
        for (shards, flush_every) in [(1, 3), (2, 7), (3, 2), (5, 13), (7, 1), (32, 5)] {
            assert_eq!(run(shards, flush_every), baseline, "S={shards} flush={flush_every}");
        }
    }

    #[test]
    fn admission_gauge_matches_the_monolithic_map_at_any_shard_count() {
        let n = 3 * admission::SEGMENT_ENTRIES as u64 + 17;
        let mut mono = AdmissionMap::new(n);
        for shards in [1usize, 2, 5, 16] {
            let mut st = ShardedDefenseState::new(n, shards);
            for i in (0..n).step_by(97) {
                st.record_good_join(i, true, Cost::ONE);
                mono.set(i, AdmissionState::Admitted);
            }
            assert_eq!(st.admission_bytes(), mono.allocated_bytes(), "S={shards}");
            mono = AdmissionMap::new(n); // reset for the next shard count
        }
    }

    #[test]
    fn sweep_distribution_preserves_the_total_exactly() {
        let mut st = ShardedDefenseState::new(1000, 7);
        for i in 0..600 {
            st.record_good_join(i, true, Cost::ZERO);
        }
        // 600 live session members of 1000 charged (400 initial residents).
        let total = Cost(777.125);
        st.apply_purge(&PurgeReport {
            good_cost: total,
            adv_cost: Cost::ZERO,
            bad_removed: 0,
            skipped: false,
            good_charged: 1000,
        });
        assert_eq!(st.good_total(), total);
        // All shards got a non-zero share.
        for shard in &st.shards {
            assert!(shard.delta.ledger.good[1] > FixedCost::ZERO);
        }
    }

    #[test]
    fn departures_only_count_admitted_sessions() {
        let mut st = ShardedDefenseState::new(10, 3);
        st.record_good_join(4, true, Cost::ONE);
        st.record_good_join(5, false, Cost::ONE);
        assert!(st.record_good_depart(4));
        assert!(!st.record_good_depart(5)); // refused
        assert!(!st.record_good_depart(6)); // never joined
        let sealed = st.finalize();
        assert_eq!(sealed.good_joins_admitted, 1);
        assert_eq!(sealed.good_joins_refused, 1);
        assert_eq!(sealed.good_departures, 1);
        assert_eq!(sealed.ledger.good_total(), Cost(2.0));
    }

    #[test]
    fn epoch_cadence_flushes_every_epoch_events() {
        let mut st = ShardedDefenseState::new(10, 2);
        for _ in 0..EPOCH_EVENTS {
            st.note_event();
        }
        assert_eq!(st.epochs(), 1);
        for _ in 0..EPOCH_EVENTS - 1 {
            st.note_event();
        }
        assert_eq!(st.epochs(), 1);
        st.note_event();
        assert_eq!(st.epochs(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one state shard")]
    fn zero_shards_rejected() {
        ShardedDefenseState::new(10, 0);
    }
}
