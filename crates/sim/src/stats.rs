//! Summary statistics for experiment reporting.

/// Summary of a sample: count, extremes, mean, and selected quantiles.
///
/// # Example
///
/// ```
/// use sybil_sim::stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.median, 2.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation (NaN if empty).
    pub min: f64,
    /// Largest observation (NaN if empty).
    pub max: f64,
    /// Arithmetic mean (NaN if empty).
    pub mean: f64,
    /// Median (interpolated, NaN if empty).
    pub median: f64,
    /// 5th percentile (NaN if empty).
    pub p05: f64,
    /// 95th percentile (NaN if empty).
    pub p95: f64,
    /// Population standard deviation (NaN if empty).
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics of `data`.
    ///
    /// An empty slice yields `count == 0` and NaN statistics — *not*
    /// zeros, which downstream CSV writers would emit as if a zero had
    /// been measured. NaN renders as a blank cell (see the bench crate's
    /// `fmt_num`), so "no data" stays distinguishable from "measured 0".
    pub fn of(data: &[f64]) -> Summary {
        if data.is_empty() {
            return Summary {
                count: 0,
                min: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
                median: f64::NAN,
                p05: f64::NAN,
                p95: f64::NAN,
                std_dev: f64::NAN,
            };
        }
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Summary {
            count: n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            median: quantile_sorted(&sorted, 0.5),
            p05: quantile_sorted(&sorted, 0.05),
            p95: quantile_sorted(&sorted, 0.95),
            std_dev: var.sqrt(),
        }
    }
}

/// Linear-interpolated quantile of pre-sorted data.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or `sorted` is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    assert!(!sorted.is_empty(), "quantile of empty data");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Geometric mean of positive data. Returns 0 for empty input.
///
/// Useful for the order-of-magnitude cost ratios the paper reports.
pub fn geometric_mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = data
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive data");
            x.ln()
        })
        .sum();
    (log_sum / data.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_nan_not_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        // "No data" must not masquerade as a measured zero.
        assert!(s.mean.is_nan());
        assert!(s.min.is_nan());
        assert!(s.max.is_nan());
        assert!(s.median.is_nan());
        assert!(s.p05.is_nan());
        assert!(s.p95.is_nan());
        assert!(s.std_dev.is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
        assert_eq!(quantile_sorted(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        quantile_sorted(&[1.0], 1.5);
    }

    #[test]
    fn geometric_mean_works() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
