//! Minimal defense implementations for engine tests and examples.

use crate::cost::Cost;
use crate::defense::{
    Admission, BatchAdmission, BatchStop, Defense, DefenseEvent, PeriodicReport, PurgeReport,
};
use crate::time::Time;

/// A trivial defense: unit entrance cost, no purges, no periodic work.
///
/// Useful as an engine smoke-test fixture and as the "no defense beyond an
/// entry fee" baseline in examples. Every join costs exactly 1; members stay
/// until they depart.
#[derive(Clone, Debug, Default)]
pub struct UnitCostDefense {
    n_good: u64,
    n_bad: u64,
}

impl UnitCostDefense {
    /// Creates an empty instance.
    pub fn new() -> Self {
        UnitCostDefense::default()
    }
}

impl Defense for UnitCostDefense {
    fn name(&self) -> String {
        "unit-cost".into()
    }

    fn init(&mut self, _now: Time, n_good: u64, n_bad: u64) -> Cost {
        self.n_good = n_good;
        self.n_bad = n_bad;
        Cost::ONE
    }

    fn quote(&self, _now: Time) -> Cost {
        Cost::ONE
    }

    fn good_join(&mut self, _now: Time) -> Admission {
        self.n_good += 1;
        Admission::Admitted { cost: Cost::ONE }
    }

    fn good_depart(&mut self, _now: Time, _joined_at: Time) {
        self.n_good = self.n_good.saturating_sub(1);
    }

    fn bad_join_batch(&mut self, _now: Time, budget: Cost, max_attempts: u64) -> BatchAdmission {
        let affordable = budget.value().floor() as u64;
        let n = affordable.min(max_attempts);
        self.n_bad += n;
        BatchAdmission {
            admitted: n,
            attempts: n,
            spent: Cost(n as f64),
            stop: if n == max_attempts { BatchStop::MaxAttempts } else { BatchStop::Budget },
        }
    }

    fn bad_depart(&mut self, _now: Time, n: u64) -> u64 {
        let d = n.min(self.n_bad);
        self.n_bad -= d;
        d
    }

    fn purge_due(&self, _now: Time) -> bool {
        false
    }

    fn purge(&mut self, _now: Time, retain_bad: u64) -> PurgeReport {
        let removed = self.n_bad - retain_bad.min(self.n_bad);
        self.n_bad = retain_bad.min(self.n_bad);
        PurgeReport {
            good_cost: Cost(self.n_good as f64),
            adv_cost: Cost(self.n_bad as f64),
            bad_removed: removed,
            skipped: false,
            good_charged: self.n_good,
        }
    }

    fn next_periodic(&self) -> Option<Time> {
        None
    }

    fn periodic_cost_per_member(&self, _now: Time) -> Cost {
        Cost::ZERO
    }

    fn periodic_apply(&mut self, _now: Time, _bad_retained: u64) -> PeriodicReport {
        PeriodicReport { good_cost: Cost::ZERO, bad_dropped: 0, good_charged: 0 }
    }

    fn n_members(&self) -> u64 {
        self.n_good + self.n_bad
    }

    fn n_bad(&self) -> u64 {
        self.n_bad
    }

    fn drain_events_into(&mut self, _out: &mut Vec<DefenseEvent>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cost_defense_counts() {
        let mut d = UnitCostDefense::new();
        assert_eq!(d.init(Time::ZERO, 10, 2), Cost::ONE);
        assert_eq!(d.n_members(), 12);
        assert_eq!(d.n_good(), 10);
        let a = d.good_join(Time(1.0));
        assert!(a.is_admitted());
        d.good_depart(Time(2.0), Time(1.0));
        assert_eq!(d.n_good(), 10);
        let b = d.bad_join_batch(Time(3.0), Cost(5.5), 100);
        assert_eq!(b.admitted, 5);
        assert_eq!(b.spent, Cost(5.0));
        assert_eq!(d.bad_depart(Time(4.0), 100), 7);
        assert_eq!(d.n_bad(), 0);
    }
}
