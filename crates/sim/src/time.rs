//! Virtual time for the discrete-event simulation.
//!
//! The paper measures time in seconds and defines a *round* as the time to
//! solve a 1-hard challenge plus a message round trip (Section 2). We model
//! time as `f64` seconds wrapped in a newtype so that times, durations, and
//! costs cannot be confused.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in seconds since simulation start.
///
/// `Time` is totally ordered via [`f64::total_cmp`], so it can key ordered
/// collections; simulation code never produces NaN times.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Time(pub f64);

impl Time {
    /// The simulation origin, `t = 0`.
    pub const ZERO: Time = Time(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "time cannot be NaN");
        Time(secs)
    }

    /// Seconds since the simulation origin.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Returns the later of two times.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for Time {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl Add<f64> for Time {
    type Output = Time;
    fn add(self, rhs: f64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<f64> for Time {
    fn add_assign(&mut self, rhs: f64) {
        self.0 += rhs;
    }
}

impl Sub<f64> for Time {
    type Output = Time;
    fn sub(self, rhs: f64) -> Time {
        Time(self.0 - rhs)
    }
}

impl SubAssign<f64> for Time {
    fn sub_assign(&mut self, rhs: f64) {
        self.0 -= rhs;
    }
}

impl Sub<Time> for Time {
    /// Difference between two times, in seconds.
    type Output = f64;
    fn sub(self, rhs: Time) -> f64 {
        self.0 - rhs.0
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    fn mul(self, rhs: f64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    fn div(self, rhs: f64) -> Time {
        Time(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = Time(1.0);
        let b = Time(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Time::ZERO, Time(0.0));
    }

    #[test]
    fn arithmetic() {
        let t = Time(10.0) + 5.0;
        assert_eq!(t, Time(15.0));
        assert_eq!(t - Time(5.0), 10.0);
        assert_eq!((t - 5.0), Time(10.0));
        let mut u = Time(1.0);
        u += 1.5;
        assert_eq!(u, Time(2.5));
        u -= 0.5;
        assert_eq!(u, Time(2.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Time::from_secs(f64::NAN);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Time(1.5).to_string(), "1.500s");
    }
}
