//! Good-ID workloads: the churn schedule a simulation replays.
//!
//! A workload is the sessions of *good* IDs only — the adversary schedules
//! its own Sybil IDs reactively. Workloads come from `sybil-churn`'s trace
//! generators or are constructed directly in tests.
//!
//! The engine does not consume a [`Workload`] directly: it pulls events
//! through the [`WorkloadSource`]/[`WorkloadStream`] traits, which
//! [`Workload`] implements in memory and
//! [`crate::workload_io::DiskWorkload`] implements over a buffered file
//! reader, so million-ID schedules never have to be resident at once.

use crate::time::Time;

/// Index of a session within its workload.
///
/// The engine packs this into event payloads, so it is deliberately a
/// 32-bit type: workloads are capped at [`SessionIndex::MAX`] sessions
/// (enforced by `Simulation::try_new` with a structured error).
pub type SessionIndex = u32;

/// One good ID's session: present from `join` until `depart`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Session {
    /// When the ID requests to join.
    pub join: Time,
    /// When the ID departs (may exceed the simulation horizon).
    pub depart: Time,
}

impl Session {
    /// Creates a session.
    ///
    /// # Panics
    ///
    /// Panics if `depart < join` or either time is non-finite. A NaN join
    /// would silently corrupt the sorted-cursor merge ordering in the
    /// engine (every comparison against NaN is false), so it is rejected
    /// at construction.
    pub fn new(join: Time, depart: Time) -> Self {
        assert!(
            join.as_secs().is_finite() && depart.as_secs().is_finite(),
            "session times must be finite (got join {}, depart {})",
            join.as_secs(),
            depart.as_secs()
        );
        assert!(depart >= join, "session departs before it joins");
        Session { join, depart }
    }

    /// Session length in seconds.
    pub fn duration(&self) -> f64 {
        self.depart - self.join
    }
}

/// The good-ID churn schedule for one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Workload {
    /// Departure times of the IDs present at `t = 0`.
    pub initial_departures: Vec<Time>,
    /// Sessions of IDs arriving after `t = 0`, sorted by join time.
    pub sessions: Vec<Session>,
}

impl Workload {
    /// An empty workload (no good IDs at all).
    pub fn empty() -> Self {
        Workload::default()
    }

    /// Creates a workload, sorting sessions by join time.
    pub fn new(initial_departures: Vec<Time>, mut sessions: Vec<Session>) -> Self {
        sessions.sort_by_key(|s| s.join);
        Workload { initial_departures, sessions }
    }

    /// Number of good IDs present at `t = 0`.
    pub fn initial_size(&self) -> u64 {
        self.initial_departures.len() as u64
    }

    /// Good join rate over `[0, horizon)`: arrivals per second.
    pub fn join_rate(&self, horizon: Time) -> f64 {
        if horizon.as_secs() <= 0.0 {
            return 0.0;
        }
        let joins = self.sessions.iter().filter(|s| s.join < horizon).count();
        joins as f64 / horizon.as_secs()
    }

    /// Validates internal consistency; used by generators and tests.
    ///
    /// Checks that sessions are sorted, non-negative-length, and that all
    /// times (session joins/departs and initial departures) are finite.
    /// NaN must be rejected explicitly: every comparison against it is
    /// false, so the sortedness and ordering checks below would silently
    /// pass a NaN-corrupted schedule straight into the engine's
    /// sorted-cursor merge.
    pub fn validate(&self) -> Result<(), String> {
        for (i, &d) in self.initial_departures.iter().enumerate() {
            if !d.as_secs().is_finite() {
                return Err(format!("initial departure {i} is non-finite: {}", d.as_secs()));
            }
        }
        for (i, s) in self.sessions.iter().enumerate() {
            if !s.join.as_secs().is_finite() || !s.depart.as_secs().is_finite() {
                return Err(format!(
                    "session {i} has non-finite times: join {}, depart {}",
                    s.join.as_secs(),
                    s.depart.as_secs()
                ));
            }
            if s.depart < s.join {
                return Err(format!("session {i} departs before joining"));
            }
        }
        for w in self.sessions.windows(2) {
            if w[1].join < w[0].join {
                return Err(format!("sessions out of order: {} after {}", w[1].join, w[0].join));
            }
        }
        Ok(())
    }
}

/// A provider of workload events the engine can replay.
///
/// Implementations own the schedule in whatever representation suits them
/// (resident vectors, a buffered disk reader, a synthetic generator) and
/// are consumed into a [`WorkloadStream`] once the horizon is known.
pub trait WorkloadSource {
    /// The stream type this source opens.
    type Stream: WorkloadStream;

    /// Number of good IDs present at `t = 0`.
    fn initial_size(&self) -> u64;

    /// Total number of arrival sessions in the schedule (including any
    /// past the horizon).
    fn session_count(&self) -> u64;

    /// Consumes the source into a stream of in-horizon events, each
    /// carrying the eager-equivalent sequence number described in
    /// [`WorkloadStream`].
    fn into_stream(self, horizon: Time) -> Self::Stream;

    /// Number of shards the engine should partition its *defense state*
    /// (admission slices, spend ledgers) into — see
    /// [`crate::shard_state`]. Single-stream sources run unsharded;
    /// sharded sources override this to match their ID-congruence layout
    /// so session `i`'s state lives with the shard that decodes it.
    fn state_shards(&self) -> usize {
        1
    }

    /// Whether the engine should eagerly allocate the full admission map
    /// before the event loop starts. Fully resident sources opt in: their
    /// session universe already occupies memory, so lazy segments buy no
    /// residency story and only cost first-touch allocations inside the
    /// measured steady-state loop. Streamed sources keep the lazy default
    /// so admission residency stays proportional to the touched ID space.
    /// The canonical `admission_bytes` gauge counts *touched* segments
    /// either way, so reports are identical under both policies.
    fn preallocate_admission(&self) -> bool {
        false
    }
}

/// One pre-ordered workload event, as yielded by a *merged* stream (see
/// [`WorkloadStream::next_event`]).
///
/// Unlike the pull-based `next_session`/`next_initial_departure` pair —
/// where the engine re-derives departures from joins and interleaves the
/// two cursors itself — a merged stream has already done that work
/// (typically on shard threads) and hands the engine fully ordered
/// `(time, seq, event)` triples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StreamEvent {
    /// Session `index` joins.
    Join(SessionIndex),
    /// Session `index` (if admitted at join time) departs; the carried
    /// time is the join time, which the defense needs for lifetime
    /// accounting — the engine never re-reads the schedule record.
    Depart(SessionIndex, Time),
    /// One of the IDs present at `t = 0` departs.
    InitialDepart,
}

/// A cursor over one workload's in-horizon events.
///
/// # The sequence-number contract
///
/// Simulations must be bit-reproducible, and streams must replay exactly
/// what an eager scheduler (all events queued up front) would have
/// produced. Every yielded event therefore carries the sequence number
/// that eager scheduler would have assigned:
///
/// * sessions in input order contribute their join (one seq) and, if the
///   departure falls within the horizon, their departure (the next seq);
/// * then in-horizon initial departures are numbered in input order.
///
/// [`seq_floor`](Self::seq_floor) is the total count so the engine can
/// reserve `0..floor` before dynamic events (adversary wakeups, purges,
/// periodic charges) draw fresh numbers above it. Streams whose backing
/// store is sorted (the on-disk format) may permute sequence numbers
/// *within* the initial-departure block relative to an unsorted in-memory
/// source; those events are payload-identical, so every observable pop
/// sequence — and with it the whole `SimReport` — is unchanged.
pub trait WorkloadStream {
    /// Total workload sequence numbers assigned (`0..floor`).
    fn seq_floor(&self) -> u64;

    /// Next session in join order, as `(index, session, join seq)`.
    /// Returns `None` once all in-horizon sessions have been yielded.
    fn next_session(&mut self) -> Option<(SessionIndex, Session, u64)>;

    /// Next in-horizon initial departure in ascending time order, as
    /// `(time, seq)`.
    fn next_initial_departure(&mut self) -> Option<(Time, u64)>;

    /// Approximate resident bytes held by this stream (buffers, cursors,
    /// and any retained schedule data), for memory reporting.
    fn resident_bytes(&self) -> usize;

    /// True if this stream is *merged*: it yields fully ordered
    /// `(time, seq, event)` triples through
    /// [`next_event`](Self::next_event) instead of the pull-based cursor
    /// pair above. The engine switches to its k-way-merge loop for merged
    /// streams (see `crates/sim/README.md`, "Sharded runs").
    fn merged(&self) -> bool {
        false
    }

    /// Next workload event in global `(time, seq)` order, for merged
    /// streams. Non-merged streams never have this called and return
    /// `None`.
    ///
    /// The contract mirrors the eager scheduler exactly: the triples
    /// across all of a merged stream's shards, sorted by `(time, seq)`,
    /// are precisely the in-horizon workload events the engine would have
    /// derived itself, with the same sequence numbers.
    fn next_event(&mut self) -> Option<(Time, u64, StreamEvent)> {
        None
    }
}

/// In-memory stream over a [`Workload`].
///
/// Retains the workload vectors (they are already resident), a join-sorted
/// permutation fallback for hand-built unsorted workloads, and the
/// descending-sorted initial-departure cursor.
pub struct MemoryStream {
    workload: Workload,
    horizon: Time,
    /// `(session index, join seq)` in descending join order, popped from
    /// the tail — only built when the workload's sessions arrive unsorted
    /// (hand-constructed); sorted workloads stream straight off the vector
    /// via `next_session`/`next_session_seq`.
    permutation: Option<Vec<(usize, u64)>>,
    /// Index of the next session whose join has not been yielded.
    next_session: usize,
    /// Sequence number for the next session event.
    next_session_seq: u64,
    /// In-horizon initial departures as `(time, seq)`, sorted descending
    /// so the next one pops off the tail.
    initial: Vec<(Time, u64)>,
    seq_floor: u64,
}

impl WorkloadSource for Workload {
    type Stream = MemoryStream;

    fn initial_size(&self) -> u64 {
        self.initial_departures.len() as u64
    }

    fn session_count(&self) -> u64 {
        self.sessions.len() as u64
    }

    /// In-memory workloads are fully resident; eager admission segments
    /// keep the engine's steady-state loop allocation-free.
    fn preallocate_admission(&self) -> bool {
        true
    }

    /// One O(n) pass assigns every in-horizon workload event the sequence
    /// number an eager scheduler would have used (see [`WorkloadStream`]).
    fn into_stream(self, horizon: Time) -> MemoryStream {
        let sessions = &self.sessions;
        // Workload::new sorts sessions; hand-built workloads may not be.
        // The sorted fast path streams straight off the vector, the
        // fallback walks a join-sorted permutation — seq assignment is by
        // input order either way, exactly as the eager scheduler did it.
        let sorted = sessions.windows(2).all(|w| w[0].join <= w[1].join);
        let mut seq = 0u64;
        let mut perm: Vec<(usize, u64)> = Vec::new();
        for (i, s) in sessions.iter().enumerate() {
            if s.join <= horizon {
                if !sorted {
                    perm.push((i, seq));
                }
                seq += 1;
                if s.depart <= horizon {
                    seq += 1;
                }
            }
        }
        let permutation = (!sorted).then(|| {
            // Descending (join, seq): the next session pops off the tail.
            perm.sort_by(|a, b| (sessions[b.0].join, b.1).cmp(&(sessions[a.0].join, a.1)));
            perm
        });
        let mut initial: Vec<(Time, u64)> = Vec::with_capacity(self.initial_departures.len());
        for &d in &self.initial_departures {
            if d <= horizon {
                initial.push((d, seq));
                seq += 1;
            }
        }
        initial.sort_by(|a, b| b.cmp(a));
        MemoryStream {
            workload: self,
            horizon,
            permutation,
            next_session: 0,
            next_session_seq: 0,
            initial,
            seq_floor: seq,
        }
    }
}

impl WorkloadStream for MemoryStream {
    fn seq_floor(&self) -> u64 {
        self.seq_floor
    }

    fn next_session(&mut self) -> Option<(SessionIndex, Session, u64)> {
        let (i, join_seq) = if let Some(perm) = &mut self.permutation {
            perm.pop()?
        } else {
            let i = self.next_session;
            let s = self.workload.sessions.get(i).copied()?;
            if s.join > self.horizon {
                // Sessions are sorted: everything further is out too.
                self.next_session = self.workload.sessions.len();
                return None;
            }
            let join_seq = self.next_session_seq;
            self.next_session = i + 1;
            self.next_session_seq = join_seq + if s.depart <= self.horizon { 2 } else { 1 };
            (i, join_seq)
        };
        Some((i as SessionIndex, self.workload.sessions[i], join_seq))
    }

    fn next_initial_departure(&mut self) -> Option<(Time, u64)> {
        self.initial.pop()
    }

    fn resident_bytes(&self) -> usize {
        self.workload.sessions.capacity() * std::mem::size_of::<Session>()
            + self.workload.initial_departures.capacity() * std::mem::size_of::<Time>()
            + self.initial.capacity() * std::mem::size_of::<(Time, u64)>()
            + self
                .permutation
                .as_ref()
                .map_or(0, |p| p.capacity() * std::mem::size_of::<(usize, u64)>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sorts_sessions() {
        let w = Workload::new(
            vec![Time(100.0)],
            vec![Session::new(Time(5.0), Time(6.0)), Session::new(Time(1.0), Time(9.0))],
        );
        assert_eq!(w.sessions[0].join, Time(1.0));
        assert_eq!(w.initial_size(), 1);
        w.validate().unwrap();
    }

    #[test]
    fn join_rate_counts_in_horizon() {
        let w = Workload::new(
            vec![],
            vec![
                Session::new(Time(1.0), Time(2.0)),
                Session::new(Time(3.0), Time(9.0)),
                Session::new(Time(50.0), Time(60.0)),
            ],
        );
        assert_eq!(w.join_rate(Time(10.0)), 0.2);
        assert_eq!(w.join_rate(Time(0.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "departs before")]
    fn bad_session_panics() {
        let _ = Session::new(Time(2.0), Time(1.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_join_panics() {
        let _ = Session::new(Time(f64::NAN), Time(1.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_depart_panics() {
        let _ = Session::new(Time(1.0), Time(f64::INFINITY));
    }

    #[test]
    fn validate_rejects_non_finite_times() {
        // Constructed via struct literals: deserializers or generators that
        // bypass Session::new must still be caught by validate().
        let nan_join = Workload {
            initial_departures: vec![],
            sessions: vec![Session { join: Time(f64::NAN), depart: Time(2.0) }],
        };
        assert!(nan_join.validate().unwrap_err().contains("non-finite"));
        let inf_depart = Workload {
            initial_departures: vec![],
            sessions: vec![Session { join: Time(1.0), depart: Time(f64::INFINITY) }],
        };
        assert!(inf_depart.validate().unwrap_err().contains("non-finite"));
        let nan_initial = Workload { initial_departures: vec![Time(f64::NAN)], sessions: vec![] };
        assert!(nan_initial.validate().unwrap_err().contains("non-finite"));
    }

    #[test]
    fn session_duration() {
        assert_eq!(Session::new(Time(1.0), Time(4.5)).duration(), 3.5);
    }

    #[test]
    fn memory_stream_yields_in_horizon_events_with_seqs() {
        let w = Workload::new(
            vec![Time(2.0), Time(50.0), Time(1.0)],
            vec![
                Session::new(Time(1.0), Time(3.0)),   // join seq 0, depart seq 1
                Session::new(Time(2.0), Time(99.0)),  // join seq 2 (depart out)
                Session::new(Time(30.0), Time(31.0)), // out of horizon entirely
            ],
        );
        let mut stream = w.into_stream(Time(10.0));
        // Sessions: seqs 0..3; initial departures in input order: 3, 4.
        assert_eq!(stream.seq_floor(), 5);
        assert_eq!(stream.next_session(), Some((0, Session::new(Time(1.0), Time(3.0)), 0)));
        assert_eq!(stream.next_session(), Some((1, Session::new(Time(2.0), Time(99.0)), 2)));
        assert_eq!(stream.next_session(), None);
        // Initial departures ascend by time; 50.0 is past the horizon.
        assert_eq!(stream.next_initial_departure(), Some((Time(1.0), 4)));
        assert_eq!(stream.next_initial_departure(), Some((Time(2.0), 3)));
        assert_eq!(stream.next_initial_departure(), None);
        assert!(stream.resident_bytes() > 0);
    }

    #[test]
    fn memory_stream_unsorted_fallback_matches_input_order_seqs() {
        // Hand-built (bypassing Workload::new's sort): seqs follow *input*
        // order, yield follows join order.
        let w = Workload {
            initial_departures: vec![],
            sessions: vec![
                Session::new(Time(5.0), Time(6.0)), // seqs 0 (join), 1 (depart)
                Session::new(Time(1.0), Time(9.0)), // seqs 2, 3
            ],
        };
        let mut stream = w.into_stream(Time(10.0));
        assert_eq!(stream.seq_floor(), 4);
        assert_eq!(stream.next_session(), Some((1, Session::new(Time(1.0), Time(9.0)), 2)));
        assert_eq!(stream.next_session(), Some((0, Session::new(Time(5.0), Time(6.0)), 0)));
        assert_eq!(stream.next_session(), None);
    }
}
