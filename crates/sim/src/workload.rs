//! Good-ID workloads: the churn schedule a simulation replays.
//!
//! A workload is the sessions of *good* IDs only — the adversary schedules
//! its own Sybil IDs reactively. Workloads come from `sybil-churn`'s trace
//! generators or are constructed directly in tests.

use crate::time::Time;

/// One good ID's session: present from `join` until `depart`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Session {
    /// When the ID requests to join.
    pub join: Time,
    /// When the ID departs (may exceed the simulation horizon).
    pub depart: Time,
}

impl Session {
    /// Creates a session.
    ///
    /// # Panics
    ///
    /// Panics if `depart < join`.
    pub fn new(join: Time, depart: Time) -> Self {
        assert!(depart >= join, "session departs before it joins");
        Session { join, depart }
    }

    /// Session length in seconds.
    pub fn duration(&self) -> f64 {
        self.depart - self.join
    }
}

/// The good-ID churn schedule for one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Workload {
    /// Departure times of the IDs present at `t = 0`.
    pub initial_departures: Vec<Time>,
    /// Sessions of IDs arriving after `t = 0`, sorted by join time.
    pub sessions: Vec<Session>,
}

impl Workload {
    /// An empty workload (no good IDs at all).
    pub fn empty() -> Self {
        Workload::default()
    }

    /// Creates a workload, sorting sessions by join time.
    pub fn new(initial_departures: Vec<Time>, mut sessions: Vec<Session>) -> Self {
        sessions.sort_by_key(|s| s.join);
        Workload { initial_departures, sessions }
    }

    /// Number of good IDs present at `t = 0`.
    pub fn initial_size(&self) -> u64 {
        self.initial_departures.len() as u64
    }

    /// Good join rate over `[0, horizon)`: arrivals per second.
    pub fn join_rate(&self, horizon: Time) -> f64 {
        if horizon.as_secs() <= 0.0 {
            return 0.0;
        }
        let joins = self.sessions.iter().filter(|s| s.join < horizon).count();
        joins as f64 / horizon.as_secs()
    }

    /// Validates internal consistency; used by generators and tests.
    ///
    /// Checks that sessions are sorted and non-negative-length.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.sessions.windows(2) {
            if w[1].join < w[0].join {
                return Err(format!("sessions out of order: {} after {}", w[1].join, w[0].join));
            }
        }
        for (i, s) in self.sessions.iter().enumerate() {
            if s.depart < s.join {
                return Err(format!("session {i} departs before joining"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sorts_sessions() {
        let w = Workload::new(
            vec![Time(100.0)],
            vec![Session::new(Time(5.0), Time(6.0)), Session::new(Time(1.0), Time(9.0))],
        );
        assert_eq!(w.sessions[0].join, Time(1.0));
        assert_eq!(w.initial_size(), 1);
        w.validate().unwrap();
    }

    #[test]
    fn join_rate_counts_in_horizon() {
        let w = Workload::new(
            vec![],
            vec![
                Session::new(Time(1.0), Time(2.0)),
                Session::new(Time(3.0), Time(9.0)),
                Session::new(Time(50.0), Time(60.0)),
            ],
        );
        assert_eq!(w.join_rate(Time(10.0)), 0.2);
        assert_eq!(w.join_rate(Time(0.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "departs before")]
    fn bad_session_panics() {
        let _ = Session::new(Time(2.0), Time(1.0));
    }

    #[test]
    fn session_duration() {
        assert_eq!(Session::new(Time(1.0), Time(4.5)).duration(), 3.5);
    }
}
