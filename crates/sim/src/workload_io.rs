//! Versioned binary on-disk workload format and its streaming reader.
//!
//! Million-ID schedules are too large to hold resident per sweep cell, so
//! the engine can replay them straight from disk: [`write_workload`]
//! serializes a [`Workload`] into a fixed little-endian layout and
//! [`DiskWorkload`] implements [`WorkloadSource`] over buffered readers,
//! keeping resident memory at two read buffers regardless of workload
//! size.
//!
//! # Format (version 1, all integers and floats little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic, the ASCII bytes "SYBWKLD0"
//! 8       4     version (u32) — currently 1
//! 12      4     flags (u32) — reserved, must be 0
//! 16      8     initial_count (u64)
//! 24      8     session_count (u64)
//! 32      8·i   initial departures: initial_count × f64 seconds,
//!               sorted ascending, finite, non-negative
//! …       16·s  sessions: session_count × (join f64, depart f64),
//!               sorted by join ascending, finite, depart ≥ join
//! ```
//!
//! Initial departures are stored *sorted* (the in-memory representation is
//! not): the reader can then stream them with one cursor and assign
//! in-horizon sequence numbers arithmetically. The permutation this
//! induces relative to an unsorted in-memory source only renumbers
//! payload-identical initial-departure events, so replayed `SimReport`s
//! are bit-identical either way (see [`WorkloadStream`]'s contract).

use crate::time::Time;
use crate::workload::{Session, SessionIndex, Workload, WorkloadSource, WorkloadStream};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The 8-byte magic at offset 0.
pub const MAGIC: [u8; 8] = *b"SYBWKLD0";
/// The current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;
/// Header length in bytes.
pub const HEADER_LEN: u64 = 32;

fn invalid<T>(msg: String) -> io::Result<T> {
    Err(io::Error::new(io::ErrorKind::InvalidData, msg))
}

/// Serializes `workload` into the on-disk format.
///
/// Sessions are written in join-sorted order and initial departures are
/// sorted ascending; the workload is validated first so a NaN or
/// inverted session can never reach a file.
pub fn write_workload<W: Write>(out: &mut W, workload: &Workload) -> io::Result<()> {
    if let Err(e) = workload.validate() {
        return invalid(format!("refusing to write invalid workload: {e}"));
    }
    let mut initial: Vec<f64> = workload.initial_departures.iter().map(|t| t.as_secs()).collect();
    initial.sort_by(|a, b| a.total_cmp(b));
    out.write_all(&MAGIC)?;
    out.write_all(&FORMAT_VERSION.to_le_bytes())?;
    out.write_all(&0u32.to_le_bytes())?;
    out.write_all(&(initial.len() as u64).to_le_bytes())?;
    out.write_all(&(workload.sessions.len() as u64).to_le_bytes())?;
    for d in initial {
        out.write_all(&d.to_le_bytes())?;
    }
    for s in &workload.sessions {
        out.write_all(&s.join.as_secs().to_le_bytes())?;
        out.write_all(&s.depart.as_secs().to_le_bytes())?;
    }
    Ok(())
}

/// Writes `workload` to `path` (buffered), creating or truncating it.
pub fn write_workload_file<P: AsRef<Path>>(path: P, workload: &Workload) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    write_workload(&mut out, workload)?;
    out.flush()
}

/// A workload backed by a file in the on-disk format.
///
/// Opening reads and checks only the header; the record regions are
/// consumed lazily by the stream. The path is retained so the stream can
/// open independent buffered readers for the two regions.
#[derive(Clone, Debug)]
pub struct DiskWorkload {
    path: PathBuf,
    initial_count: u64,
    session_count: u64,
}

impl DiskWorkload {
    /// Opens `path`, validating magic, version, and that the file length
    /// matches the header's record counts.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<DiskWorkload> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)
            .map_err(|e| io::Error::new(e.kind(), format!("workload header unreadable: {e}")))?;
        if header[0..8] != MAGIC {
            return invalid(format!("bad workload magic {:?}", &header[0..8]));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return invalid(format!(
                "unsupported workload format version {version} (this build reads {FORMAT_VERSION})"
            ));
        }
        let flags = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        if flags != 0 {
            return invalid(format!("unknown workload flags {flags:#x}"));
        }
        let initial_count = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let session_count = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
        let expected = HEADER_LEN + initial_count * 8 + session_count * 16;
        let actual = file.seek(SeekFrom::End(0))?;
        if actual != expected {
            return invalid(format!(
                "workload file is {actual} bytes, header implies {expected} \
                 ({initial_count} initial departures + {session_count} sessions)"
            ));
        }
        Ok(DiskWorkload { path, initial_count, session_count })
    }

    /// The file this workload reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn sessions_offset(&self) -> u64 {
        HEADER_LEN + self.initial_count * 8
    }

    /// Opens a buffered reader positioned at `offset`.
    fn reader_at(&self, offset: u64) -> io::Result<BufReader<File>> {
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(offset))?;
        Ok(BufReader::new(file))
    }

    /// Pre-scans the file sequentially (O(1) memory) to count in-horizon
    /// sequence numbers — the same totals the in-memory pass computes —
    /// validating record ordering and finiteness along the way.
    ///
    /// Shared by [`into_stream`](WorkloadSource::into_stream) and the
    /// sharded replay (`crate::shard`), which needs the totals to place
    /// each shard's sequence numbers without consuming the workload.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be read or its records violate the
    /// format invariants (unsorted, non-finite, inverted sessions);
    /// [`write_workload`] can produce neither, so this indicates a
    /// corrupt or foreign file.
    pub(crate) fn prescan(&self, horizon: Time) -> PreScan {
        let fail = |e: &dyn std::fmt::Display| -> ! {
            panic!("workload file {}: {e}", self.path.display())
        };
        // Pass 1a: in-horizon initial departures (sorted → stop early).
        let mut initial = self.reader_at(HEADER_LEN).unwrap_or_else(|e| fail(&e));
        let mut initial_in_horizon = 0u64;
        let mut prev = f64::NEG_INFINITY;
        for i in 0..self.initial_count {
            let d = read_f64(&mut initial).unwrap_or_else(|e| fail(&e));
            if !d.is_finite() || d < prev {
                fail(&format!("corrupt initial departure {i}: {d} after {prev}"));
            }
            prev = d;
            if Time(d) <= horizon {
                initial_in_horizon += 1;
            } else {
                break; // Sorted: the rest are out of horizon too.
            }
        }
        // Pass 1b: session seq totals (sorted by join → stop early).
        let mut sessions = self.reader_at(self.sessions_offset()).unwrap_or_else(|e| fail(&e));
        let mut session_seqs = 0u64;
        let mut prev_join = f64::NEG_INFINITY;
        for i in 0..self.session_count {
            let join = read_f64(&mut sessions).unwrap_or_else(|e| fail(&e));
            let depart = read_f64(&mut sessions).unwrap_or_else(|e| fail(&e));
            if !join.is_finite() || !depart.is_finite() || depart < join || join < prev_join {
                fail(&format!("corrupt session {i}: join {join}, depart {depart}"));
            }
            prev_join = join;
            if Time(join) > horizon {
                break; // Sorted: the rest are out of horizon too.
            }
            session_seqs += 1;
            if Time(depart) <= horizon {
                session_seqs += 1;
            }
        }
        PreScan { session_seqs, initial_in_horizon }
    }

    /// Opens a raw sequential cursor over both record regions, for the
    /// sharded replay. No horizon filtering or seq assignment — the shard
    /// producer does both, so the cursor just decodes records in stored
    /// order.
    pub(crate) fn records(&self) -> io::Result<DiskRecords> {
        Ok(DiskRecords {
            sessions: self.reader_at(self.sessions_offset())?,
            initial: self.reader_at(HEADER_LEN)?,
            path: self.path.clone(),
            sessions_remaining: self.session_count,
            initial_remaining: self.initial_count,
        })
    }
}

/// In-horizon sequence-number totals from a [`DiskWorkload::prescan`].
pub(crate) struct PreScan {
    /// Sequence numbers assigned to session events (joins + in-horizon
    /// departures), `0..session_seqs`.
    pub(crate) session_seqs: u64,
    /// In-horizon initial departures, numbered `session_seqs..floor`.
    pub(crate) initial_in_horizon: u64,
}

impl PreScan {
    /// Total workload sequence numbers (`seq_floor`).
    pub(crate) fn seq_floor(&self) -> u64 {
        self.session_seqs + self.initial_in_horizon
    }
}

/// Raw sequential record cursor over a workload file: sessions in stored
/// (join-sorted) order and initial departures in stored (ascending) order,
/// with no horizon filtering. Invariants were already checked by
/// [`DiskWorkload::prescan`]; a read failure here means the file changed
/// underneath us, which panics like the mid-replay paths of
/// [`DiskStream`].
pub(crate) struct DiskRecords {
    sessions: BufReader<File>,
    initial: BufReader<File>,
    path: PathBuf,
    sessions_remaining: u64,
    initial_remaining: u64,
}

impl DiskRecords {
    /// Next stored session record, or `None` at the end of the region.
    pub(crate) fn next_session(&mut self) -> Option<Session> {
        if self.sessions_remaining == 0 {
            return None;
        }
        self.sessions_remaining -= 1;
        let mut record = |what: &str| -> f64 {
            read_f64(&mut self.sessions).unwrap_or_else(|e| {
                panic!("workload file {}: {what} unreadable mid-replay: {e}", self.path.display())
            })
        };
        let join = record("session join");
        let depart = record("session depart");
        Some(Session::new(Time(join), Time(depart)))
    }

    /// Next stored initial departure, or `None` at the end of the region.
    pub(crate) fn next_initial(&mut self) -> Option<Time> {
        if self.initial_remaining == 0 {
            return None;
        }
        self.initial_remaining -= 1;
        let d = read_f64(&mut self.initial).unwrap_or_else(|e| {
            panic!(
                "workload file {}: initial departure unreadable mid-replay: {e}",
                self.path.display()
            )
        });
        Some(Time(d))
    }
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

impl WorkloadSource for DiskWorkload {
    type Stream = DiskStream;

    fn initial_size(&self) -> u64 {
        self.initial_count
    }

    fn session_count(&self) -> u64 {
        self.session_count
    }

    /// Pre-scans the file once (sequential, O(1) memory) to count
    /// in-horizon sequence numbers — the same totals the in-memory pass
    /// computes — then reopens both regions for the replay cursors.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be read or its records violate the
    /// format invariants (unsorted, non-finite, inverted sessions);
    /// [`write_workload`] can produce neither, so this indicates a
    /// corrupt or foreign file.
    fn into_stream(self, horizon: Time) -> DiskStream {
        let fail = |e: &dyn std::fmt::Display| -> ! {
            panic!("workload file {}: {e}", self.path.display())
        };
        let scan = self.prescan(horizon);
        let (session_seqs, initial_in_horizon) = (scan.session_seqs, scan.initial_in_horizon);
        let seq_floor = scan.seq_floor();
        DiskStream {
            sessions: self.reader_at(self.sessions_offset()).unwrap_or_else(|e| fail(&e)),
            initial: self.reader_at(HEADER_LEN).unwrap_or_else(|e| fail(&e)),
            horizon,
            next_index: 0,
            next_session_seq: 0,
            sessions_remaining: self.session_count,
            initial_seq: session_seqs,
            initial_remaining: initial_in_horizon,
            seq_floor,
            path: self.path,
        }
    }
}

/// Streaming cursor over a [`DiskWorkload`]: two independent buffered
/// readers (sessions and initial departures), each holding one 8 KiB
/// buffer — resident memory is O(1) in the workload size.
pub struct DiskStream {
    sessions: BufReader<File>,
    initial: BufReader<File>,
    path: PathBuf,
    horizon: Time,
    next_index: SessionIndex,
    next_session_seq: u64,
    /// Session records not yet read; 0 once the region (or horizon) ends.
    sessions_remaining: u64,
    /// Seq of the next in-horizon initial departure (they are numbered
    /// after all session events, in stored — i.e. ascending — order).
    initial_seq: u64,
    initial_remaining: u64,
    seq_floor: u64,
}

impl WorkloadStream for DiskStream {
    fn seq_floor(&self) -> u64 {
        self.seq_floor
    }

    fn next_session(&mut self) -> Option<(SessionIndex, Session, u64)> {
        if self.sessions_remaining == 0 {
            return None;
        }
        self.sessions_remaining -= 1;
        // Record counts and invariants were verified by the pre-scan; a
        // read failure here means the file changed underneath us.
        let mut record = |what: &str| -> f64 {
            read_f64(&mut self.sessions).unwrap_or_else(|e| {
                panic!("workload file {}: {what} unreadable mid-replay: {e}", self.path.display())
            })
        };
        let join = record("session join");
        let depart = record("session depart");
        if Time(join) > self.horizon {
            // Sorted: everything further is out of horizon too.
            self.sessions_remaining = 0;
            return None;
        }
        let session = Session::new(Time(join), Time(depart));
        let join_seq = self.next_session_seq;
        self.next_session_seq = join_seq + if session.depart <= self.horizon { 2 } else { 1 };
        let index = self.next_index;
        self.next_index += 1;
        Some((index, session, join_seq))
    }

    fn next_initial_departure(&mut self) -> Option<(Time, u64)> {
        if self.initial_remaining == 0 {
            return None;
        }
        self.initial_remaining -= 1;
        let d = read_f64(&mut self.initial).unwrap_or_else(|e| {
            panic!(
                "workload file {}: initial departure unreadable mid-replay: {e}",
                self.path.display()
            )
        });
        let seq = self.initial_seq;
        self.initial_seq += 1;
        Some((Time(d), seq))
    }

    fn resident_bytes(&self) -> usize {
        self.sessions.capacity() + self.initial.capacity() + std::mem::size_of::<DiskStream>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique temp-file path per call (no tempfile crate offline).
    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("sybil_wkld_{tag}_{}_{n}.bin", std::process::id()))
    }

    fn sample_workload() -> Workload {
        Workload::new(
            vec![Time(7.0), Time(2.0), Time(50.0)],
            vec![
                Session::new(Time(1.0), Time(3.0)),
                Session::new(Time(2.0), Time(99.0)),
                Session::new(Time(2.0), Time(4.0)),
                Session::new(Time(30.0), Time(31.0)),
            ],
        )
    }

    #[test]
    fn roundtrip_streams_identical_events() {
        let w = sample_workload();
        let path = temp_path("roundtrip");
        write_workload_file(&path, &w).unwrap();
        let disk = DiskWorkload::open(&path).unwrap();
        assert_eq!(disk.initial_size(), 3);
        assert_eq!(disk.session_count(), 4);

        let horizon = Time(10.0);
        let mut mem = w.into_stream(horizon);
        let mut dsk = disk.into_stream(horizon);
        assert_eq!(mem.seq_floor(), dsk.seq_floor());
        loop {
            let (a, b) = (mem.next_session(), dsk.next_session());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        // Initial departures: identical times in ascending order; seqs are
        // a permutation within the initial block (disk stores them sorted).
        let mem_initial: Vec<(Time, u64)> =
            std::iter::from_fn(|| mem.next_initial_departure()).collect();
        let dsk_initial: Vec<(Time, u64)> =
            std::iter::from_fn(|| dsk.next_initial_departure()).collect();
        assert_eq!(
            mem_initial.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            dsk_initial.iter().map(|(t, _)| *t).collect::<Vec<_>>()
        );
        let mut mem_seqs: Vec<u64> = mem_initial.iter().map(|(_, s)| *s).collect();
        let mut dsk_seqs: Vec<u64> = dsk_initial.iter().map(|(_, s)| *s).collect();
        mem_seqs.sort_unstable();
        dsk_seqs.sort_unstable();
        assert_eq!(mem_seqs, dsk_seqs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_bad_magic_version_and_truncation() {
        let w = sample_workload();
        let path = temp_path("reject");
        write_workload_file(&path, &w).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(DiskWorkload::open(&path).unwrap_err().to_string().contains("magic"));

        let mut bad_version = good.clone();
        bad_version[8] = 99;
        std::fs::write(&path, &bad_version).unwrap();
        assert!(DiskWorkload::open(&path).unwrap_err().to_string().contains("version"));

        let truncated = &good[..good.len() - 8];
        std::fs::write(&path, truncated).unwrap();
        assert!(DiskWorkload::open(&path).unwrap_err().to_string().contains("bytes"));

        std::fs::write(&path, &good).unwrap();
        assert!(DiskWorkload::open(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_rejects_invalid_workloads() {
        let nan = Workload { initial_departures: vec![Time(f64::NAN)], sessions: vec![] };
        let mut sink = Vec::new();
        let err = write_workload(&mut sink, &nan).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn empty_workload_roundtrips() {
        let path = temp_path("empty");
        write_workload_file(&path, &Workload::empty()).unwrap();
        let disk = DiskWorkload::open(&path).unwrap();
        assert_eq!(disk.initial_size(), 0);
        assert_eq!(disk.session_count(), 0);
        let mut stream = disk.into_stream(Time(100.0));
        assert_eq!(stream.seq_floor(), 0);
        assert_eq!(stream.next_session(), None);
        assert_eq!(stream.next_initial_departure(), None);
        std::fs::remove_file(&path).ok();
    }
}
