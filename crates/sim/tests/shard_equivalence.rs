//! Property test: the sharded shared-nothing replay produces bit-identical
//! `SimReport`s for every shard count, in memory and from disk.
//!
//! Three layers of equality are pinned, strongest first:
//!
//! * S-shard vs 1-shard (`ShardedWorkload` either way): **full**
//!   `SimReport` bit equality — every gauge included. Sharding may not
//!   leak into a single bit.
//! * sharded-from-memory vs sharded-from-disk: full bit equality — the
//!   canonical (sorted) memory order is exactly the on-disk order.
//! * sharded vs the monolithic engine loop: equality after zeroing the
//!   two representation gauges that legitimately differ
//!   (`workload_stream_bytes`: buffers live shard-side;
//!   `peak_queue_len`: the merged loop's queue holds only internal
//!   events). All behavioral fields — counters, ledgers, invariants,
//!   timelines — compare bit-for-bit.
//!
//! Randomized (seeded-loop) workloads on a coarse 0.5 s grid stress FIFO
//! tie-breaking across shard boundaries, horizon straddles, and ties with
//! dynamic events; adversary strategies from the registry stress the
//! float-accumulation order (budget accrual partitions sums at every
//! event pop).

use sybil_sim::adversary::{build_strategy, StrategyParams, STRATEGY_NAMES};
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::shard::ShardedWorkload;
use sybil_sim::testutil::UnitCostDefense;
use sybil_sim::time::Time;
use sybil_sim::workload::{Session, Workload};
use sybil_sim::workload_io::{write_workload_file, DiskWorkload};
use sybil_sim::SimReport;

/// The shard counts the acceptance criteria pin. 5 and 32 cover the
/// sharded *defense state* (admission slices + epoch-reduced ledgers)
/// beyond the original decode-sharding set; the trial workloads draw
/// 30–119 sessions, so most of these counts — 32 in particular, being
/// close to (or larger than) some initial-departure populations — do not
/// divide the ID count and leave ragged, partly empty slices.
const SHARD_COUNTS: [usize; 7] = [1, 2, 3, 5, 7, 16, 32];

/// SplitMix64: a tiny deterministic generator for the trial workloads.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A randomized workload on a coarse 0.5 s time grid (duplicate join
/// times, collisions with integer-time dynamic events), with sessions and
/// initial departures on both sides of the horizon.
fn random_workload(seed: u64, horizon: f64) -> Workload {
    let mut s = seed;
    let grid = |r: u64, span: f64| (r % (span * 2.0) as u64) as f64 * 0.5;
    let n_initial = 5 + (splitmix(&mut s) % 40) as usize;
    let initial: Vec<Time> =
        (0..n_initial).map(|_| Time(grid(splitmix(&mut s), horizon * 1.5))).collect();
    let n_sessions = 30 + (splitmix(&mut s) % 90) as usize;
    let sessions: Vec<Session> = (0..n_sessions)
        .map(|_| {
            let join = grid(splitmix(&mut s), horizon * 1.2);
            let len = grid(splitmix(&mut s), horizon);
            Session::new(Time(join), Time(join + len))
        })
        .collect();
    Workload::new(initial, sessions)
}

fn temp_path(tag: &str, n: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sybil_shard_eq_{tag}_{}_{n}.bin", std::process::id()))
}

/// Representation gauges that legitimately differ between the monolithic
/// and merged loops; every behavioral field stays bit-compared.
fn vs_monolithic(mut report: SimReport) -> SimReport {
    report.workload_stream_bytes = 0;
    report.peak_queue_len = 0;
    report
}

fn run_sharded(cfg: SimConfig, t: f64, source: ShardedWorkload) -> SimReport {
    let adversary = build_strategy("budget", &StrategyParams::rate(t)).expect("registry strategy");
    Simulation::new(cfg, UnitCostDefense::new(), adversary, source).run()
}

#[test]
fn every_shard_count_is_bit_identical_in_memory_and_from_disk() {
    let horizon = 50.0;
    let cfg = SimConfig {
        horizon: Time(horizon),
        adv_rate: 3.0,
        initial_bad: 2,
        record_good_joins: true,
        timeline_resolution: Some(1.0),
        ..SimConfig::default()
    };
    for trial in 0..12u64 {
        let workload = random_workload(trial.wrapping_mul(0xD1CE_5EED).wrapping_add(7), horizon);
        workload.validate().expect("generated workload is valid");
        let path = temp_path("counts", trial);
        write_workload_file(&path, &workload).expect("write workload");

        let baseline = run_sharded(cfg, 3.0, ShardedWorkload::from_workload(workload.clone(), 1));
        for shards in SHARD_COUNTS {
            let mem =
                run_sharded(cfg, 3.0, ShardedWorkload::from_workload(workload.clone(), shards));
            assert_eq!(mem, baseline, "memory, {shards} shards, trial {trial}");
            let disk = DiskWorkload::open(&path).expect("open workload");
            let dsk = run_sharded(cfg, 3.0, ShardedWorkload::from_disk(disk, shards));
            assert_eq!(dsk, baseline, "disk, {shards} shards, trial {trial}");
        }

        // And the whole sharded family must match the monolithic loop on
        // every behavioral field.
        let mono = Simulation::new(
            cfg,
            UnitCostDefense::new(),
            build_strategy("budget", &StrategyParams::rate(3.0)).unwrap(),
            workload,
        )
        .run();
        assert_eq!(vs_monolithic(baseline), vs_monolithic(mono), "trial {trial}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn every_registry_strategy_is_shard_invariant() {
    let horizon = 60.0;
    let workload = random_workload(0xBEEF, horizon);
    let path = temp_path("strategies", 0);
    write_workload_file(&path, &workload).expect("write workload");
    for strategy in STRATEGY_NAMES {
        let t = 5.0;
        let cfg = SimConfig {
            horizon: Time(horizon),
            adv_rate: t,
            initial_bad: 3,
            timeline_resolution: Some(2.0),
            ..SimConfig::default()
        };
        let params = StrategyParams::rate(t).with_target_fraction(0.2).with_seed(11);
        let run = |source: ShardedWorkload| -> SimReport {
            let adversary = build_strategy(strategy, &params).expect("registry strategy");
            Simulation::new(cfg, UnitCostDefense::new(), adversary, source).run()
        };
        let baseline = run(ShardedWorkload::from_workload(workload.clone(), 1));
        for shards in SHARD_COUNTS {
            let mem = run(ShardedWorkload::from_workload(workload.clone(), shards));
            assert_eq!(mem, baseline, "{strategy}, memory, {shards} shards");
            let disk = DiskWorkload::open(&path).expect("open workload");
            assert_eq!(
                run(ShardedWorkload::from_disk(disk, shards)),
                baseline,
                "{strategy}, disk, {shards} shards"
            );
        }
        let mono = Simulation::new(
            cfg,
            UnitCostDefense::new(),
            build_strategy(strategy, &params).unwrap(),
            workload.clone(),
        )
        .run();
        assert_eq!(vs_monolithic(baseline), vs_monolithic(mono), "{strategy} vs monolithic");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn heavy_tie_workload_is_shard_invariant() {
    // Worst-case FIFO stress across shard boundaries: two join waves, a
    // departure wave tying with the second join wave, departures exactly
    // at the horizon, and tied initial departures — neighbors in time are
    // owned by different shards by construction (index mod S).
    let horizon = 10.0;
    let sessions: Vec<Session> = (0..60)
        .map(|i| {
            let join = if i % 2 == 0 { 2.0 } else { 5.0 };
            let depart = match i % 4 {
                0 => 5.0,
                1 => horizon,
                2 => horizon + 50.0,
                _ => 7.5,
            };
            Session::new(Time(join), Time(depart))
        })
        .collect();
    let workload = Workload::new(vec![Time(2.0); 10], sessions);
    let cfg = SimConfig { horizon: Time(horizon), adv_rate: 1.0, ..SimConfig::default() };
    let baseline = run_sharded(cfg, 1.0, ShardedWorkload::from_workload(workload.clone(), 1));
    assert_eq!(baseline.good_joins_admitted + baseline.good_joins_refused, 60);
    for shards in SHARD_COUNTS {
        let report =
            run_sharded(cfg, 1.0, ShardedWorkload::from_workload(workload.clone(), shards));
        assert_eq!(report, baseline, "{shards} shards");
    }
}

#[test]
fn empty_and_tiny_workloads_shard_cleanly() {
    // Degenerate slices: more shards than events, shards with nothing to
    // do, a workload with no sessions at all.
    let cases = [
        Workload::empty(),
        Workload::new(vec![Time(1.0)], vec![]),
        Workload::new(vec![], vec![Session::new(Time(1.0), Time(2.0))]),
        Workload::new(vec![Time(5.0); 3], vec![Session::new(Time(0.0), Time(100.0))]),
    ];
    let cfg = SimConfig { horizon: Time(10.0), adv_rate: 2.0, ..SimConfig::default() };
    for (case, workload) in cases.into_iter().enumerate() {
        let baseline = run_sharded(cfg, 2.0, ShardedWorkload::from_workload(workload.clone(), 1));
        for shards in SHARD_COUNTS {
            let report =
                run_sharded(cfg, 2.0, ShardedWorkload::from_workload(workload.clone(), shards));
            assert_eq!(report, baseline, "case {case}, {shards} shards");
        }
    }
}
