//! Property test: the disk-streaming workload path replays bit-identical
//! `SimReport`s to the in-memory path.
//!
//! Randomized (seeded-loop) workloads stress exactly the places the two
//! paths could diverge:
//!
//! * duplicate join times (FIFO tie-breaking through the eager-equivalent
//!   sequence numbering),
//! * sessions straddling the horizon (join inside, depart outside),
//! * sessions entirely past the horizon,
//! * initial departures on both sides of the horizon, with ties,
//! * ties between workload events and dynamic events (adversary wakeups
//!   and timeline samples land on the same coarse time grid).

use sybil_sim::adversary::{BudgetJoiner, NullAdversary};
use sybil_sim::engine::{SimConfig, Simulation};
use sybil_sim::testutil::UnitCostDefense;
use sybil_sim::time::Time;
use sybil_sim::workload::{Session, Workload};
use sybil_sim::workload_io::{write_workload_file, DiskWorkload};
use sybil_sim::SimReport;

/// SplitMix64: a tiny deterministic generator for the trial workloads.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A randomized workload on a coarse 0.5 s time grid (guaranteeing
/// duplicate join times and collisions with integer-time dynamic events),
/// with roughly a third of sessions and initial departures straddling or
/// exceeding the horizon.
fn random_workload(seed: u64, horizon: f64) -> Workload {
    let mut s = seed;
    let grid = |r: u64, span: f64| (r % (span * 2.0) as u64) as f64 * 0.5;
    let n_initial = 5 + (splitmix(&mut s) % 40) as usize;
    let initial: Vec<Time> =
        (0..n_initial).map(|_| Time(grid(splitmix(&mut s), horizon * 1.5))).collect();
    let n_sessions = 10 + (splitmix(&mut s) % 60) as usize;
    let sessions: Vec<Session> = (0..n_sessions)
        .map(|_| {
            let join = grid(splitmix(&mut s), horizon * 1.2);
            let len = grid(splitmix(&mut s), horizon);
            Session::new(Time(join), Time(join + len))
        })
        .collect();
    Workload::new(initial, sessions)
}

fn temp_path(tag: &str, n: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sybil_stream_eq_{tag}_{}_{n}.bin", std::process::id()))
}

/// Memory accounting legitimately differs between the two sources (vectors
/// vs read buffers); everything else must match bit-for-bit.
fn normalized(mut report: SimReport) -> SimReport {
    report.workload_stream_bytes = 0;
    report
}

#[test]
fn disk_replay_is_bit_identical_to_memory_replay() {
    let horizon = 50.0;
    for trial in 0..25u64 {
        let workload = random_workload(trial.wrapping_mul(0x5DEE_CE66).wrapping_add(3), horizon);
        workload.validate().expect("generated workload is valid");
        let path = temp_path("budget", trial);
        write_workload_file(&path, &workload).expect("write workload");
        let disk = DiskWorkload::open(&path).expect("open workload");

        // An attacking run: budget accrual partitions float sums at every
        // event pop, so any ordering difference shows up in the ledger.
        let cfg = SimConfig {
            horizon: Time(horizon),
            adv_rate: 3.0,
            initial_bad: 2,
            record_good_joins: true,
            timeline_resolution: Some(1.0),
            ..SimConfig::default()
        };
        let mem =
            Simulation::new(cfg, UnitCostDefense::new(), BudgetJoiner::new(3.0), workload.clone())
                .run();
        let dsk = Simulation::new(cfg, UnitCostDefense::new(), BudgetJoiner::new(3.0), disk).run();
        assert_eq!(normalized(mem), normalized(dsk), "trial {trial}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn disk_replay_matches_under_truncated_recording() {
    // The bounded-recording knobs (timeline decimation, join-time caps)
    // must behave identically across sources too.
    let horizon = 80.0;
    for trial in 0..10u64 {
        let workload = random_workload(trial.wrapping_mul(0xA5A5).wrapping_add(17), horizon);
        let path = temp_path("caps", trial);
        write_workload_file(&path, &workload).expect("write workload");
        let disk = DiskWorkload::open(&path).expect("open workload");

        let cfg = SimConfig {
            horizon: Time(horizon),
            record_good_joins: true,
            max_good_join_times: Some(5),
            timeline_resolution: Some(0.5),
            max_timeline_points: Some(8),
            ..SimConfig::default()
        };
        let mem =
            Simulation::new(cfg, UnitCostDefense::new(), NullAdversary, workload.clone()).run();
        let dsk = Simulation::new(cfg, UnitCostDefense::new(), NullAdversary, disk).run();
        assert!(mem.timeline.len() <= 8);
        assert_eq!(normalized(mem), normalized(dsk), "trial {trial}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn heavy_tie_workload_replays_identically() {
    // Worst-case FIFO stress: every session joins at one of two times and
    // several depart at the exact horizon.
    let horizon = 10.0;
    let sessions: Vec<Session> = (0..40)
        .map(|i| {
            let join = if i % 2 == 0 { 2.0 } else { 5.0 };
            let depart = match i % 4 {
                0 => 5.0,            // ties with the other join wave
                1 => horizon,        // departs exactly at the horizon
                2 => horizon + 50.0, // straddles the horizon
                _ => 7.5,
            };
            Session::new(Time(join), Time(depart))
        })
        .collect();
    let workload = Workload::new(vec![Time(2.0); 10], sessions);
    let path = temp_path("ties", 0);
    write_workload_file(&path, &workload).expect("write workload");
    let disk = DiskWorkload::open(&path).expect("open workload");

    let cfg = SimConfig { horizon: Time(horizon), adv_rate: 1.0, ..SimConfig::default() };
    let mem =
        Simulation::new(cfg, UnitCostDefense::new(), BudgetJoiner::new(1.0), workload.clone())
            .run();
    let dsk = Simulation::new(cfg, UnitCostDefense::new(), BudgetJoiner::new(1.0), disk).run();
    // Sanity: the tie storm actually processed events.
    assert!(mem.good_joins_admitted + mem.good_joins_refused == 40);
    assert!(mem.good_departures > 10);
    assert_eq!(normalized(mem), normalized(dsk));
    std::fs::remove_file(&path).ok();
}
