//! Scenario: a sustained Sybil attack on a Bitcoin-scale peer-to-peer
//! network (the paper's motivating setting — eclipse/double-spend attacks
//! need a Sybil majority in a victim's peer table).
//!
//! Sweeps the adversary's spend rate and shows how Ergo's costs scale like
//! `√T` while the attack's effective injection rate collapses, then prints
//! a membership timeline around a burst attack.
//!
//! Run with: `cargo run --release --example bitcoin_attack`

use bankrupting_sybil::prelude::*;

fn main() {
    let network = networks::bitcoin();
    let horizon = Time(3_000.0);
    println!(
        "Bitcoin-scale workload: {} initial IDs, diurnal arrivals, heavy-tailed sessions\n",
        network.initial_size
    );

    // Part 1: cost scaling across attack intensities.
    println!("--- Ergo under increasing attack (horizon {horizon}) ---");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>10}  {:>12}",
        "T", "A (good)", "A/T", "purges", "Sybil joins"
    );
    for exp in [0u32, 4, 8, 12, 16] {
        let t = if exp == 0 { 0.0 } else { (1u64 << exp) as f64 };
        let workload = network.generate(horizon, 1);
        let cfg = SimConfig { horizon, adv_rate: t, ..SimConfig::default() };
        let report =
            Simulation::new(cfg, Ergo::new(ErgoConfig::default()), BudgetJoiner::new(t), workload)
                .run();
        println!(
            "{:>10.0}  {:>12.1}  {:>12}  {:>10}  {:>12}",
            t,
            report.good_spend_rate(),
            if t > 0.0 { format!("{:.3}", report.good_spend_rate() / t) } else { "-".into() },
            report.purges,
            report.bad_joins_admitted,
        );
        assert!(report.max_bad_fraction < 1.0 / 6.0, "invariant violated");
    }

    // Part 2: a burst attacker hoards budget and dumps it every 10 minutes.
    println!("\n--- burst attacker (T = 4096/s, bursts every 600 s) ---");
    let t = 4096.0;
    let workload = network.generate(horizon, 2);
    let cfg = SimConfig {
        horizon,
        adv_rate: t,
        timeline_resolution: Some(300.0),
        ..SimConfig::default()
    };
    let report = Simulation::new(
        cfg,
        Ergo::new(ErgoConfig::default()),
        BurstJoiner::new(t, 600.0),
        workload,
    )
    .run();
    println!("{:>8}  {:>9}  {:>7}  {:>10}", "time", "members", "Sybil", "bad frac");
    for p in &report.timeline {
        println!(
            "{:>8.0}  {:>9}  {:>7}  {:>10.4}",
            p.at.as_secs(),
            p.members,
            p.bad,
            p.bad as f64 / p.members.max(1) as f64
        );
    }
    println!(
        "\nmax bad fraction over the whole run: {:.4} (< 1/6 = {:.4}) — \
         the quadratic entrance pricing makes bursts inefficient: each burst's \
         k-th Sybil join costs k, so a hoarded budget B buys only ~sqrt(2B) IDs.",
        report.max_bad_fraction,
        1.0 / 6.0
    );
}
