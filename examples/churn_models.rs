//! Scenario: exploring the ABC churn model (paper Sections 2.1, 4, 5).
//!
//! Generates traces with prescribed `(α, β)` smoothness, detects their
//! epochs, and measures empirical `α`/`β` back; then characterizes the four
//! evaluation networks' churn — epochs, rates, smoothness, and the
//! Liben-Nowell half-life the paper compares epochs against.
//!
//! Run with: `cargo run --release --example churn_models`

use bankrupting_sybil::prelude::*;
use sybil_churn::abc::{detect_epochs, estimate_beta, measure_alpha};
use sybil_churn::halflife::{half_life_from, system_half_life};

fn main() {
    // --- 1. Synthetic ABC traces: generate with (α, β), measure them back ---
    println!("--- ABC trace generation: configured vs measured smoothness ---");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12}",
        "alpha", "beta", "epochs", "alpha (meas)", "beta (meas)"
    );
    for (alpha, beta) in [(1.0, 1.0), (2.0, 1.0), (2.0, 4.0), (4.0, 8.0)] {
        let gen = AbcTraceGenerator { n0: 600, rho0: 3.0, alpha, beta, epochs: 8 };
        let workload = gen.generate(17);
        // Analyze up to the last generated arrival (members that never
        // depart get a sentinel departure far beyond this).
        let horizon = workload.sessions.last().map_or(Time(1.0), |s| s.join + 1.0);
        let epochs = detect_epochs(&workload, horizon, (1, 2));
        let a = measure_alpha(&epochs);
        let b = estimate_beta(&workload, &epochs, horizon);
        println!("{alpha:>8.1} {beta:>8.1} {:>10} {a:>12.2} {b:>12.2}", epochs.len());
    }
    println!(
        "\n(α permits exponential rate drift across epochs — a factor-2 α compounds \
         to 2^k over k epochs; β bounds within-epoch burstiness.)"
    );

    // --- 2. The four evaluation networks ---
    println!("\n--- churn characteristics of the evaluation networks (5 000 s) ---");
    println!(
        "{:>11} {:>8} {:>9} {:>8} {:>10} {:>10} {:>12}",
        "network", "epochs", "rho(avg)", "alpha", "beta(est)", "half-life", "epoch 1 len"
    );
    let horizon = Time(5_000.0);
    for net in networks::all_networks() {
        let workload = net.generate(horizon, 3);
        let epochs = detect_epochs(&workload, horizon, (1, 2));
        let alpha = measure_alpha(&epochs);
        let beta = estimate_beta(&workload, &epochs, horizon);
        let rho_avg = if epochs.is_empty() {
            workload.join_rate(horizon)
        } else {
            epochs.iter().map(Epoch::rho).sum::<f64>() / epochs.len() as f64
        };
        let hl = system_half_life(&workload, horizon, 8);
        println!(
            "{:>11} {:>8} {:>9.2} {:>8.2} {:>10.2} {:>10} {:>12}",
            net.name,
            epochs.len(),
            rho_avg,
            alpha,
            beta,
            hl.map_or("> horizon".into(), |v| format!("{v:.0}s")),
            epochs.first().map_or("-".into(), |e| format!("{:.0}s", e.len())),
        );
    }

    // --- 3. Epoch vs half-life (paper Section 4.2) ---
    println!("\n--- at least one epoch per half-life (Gnutella) ---");
    let workload = networks::gnutella().generate(horizon, 9);
    let epochs = detect_epochs(&workload, horizon, (1, 2));
    let hl = half_life_from(&workload, Time::ZERO, horizon);
    match hl.value() {
        Some(v) => {
            let epochs_within = epochs.iter().filter(|e| e.end.as_secs() <= v).count();
            println!(
                "half-life from t=0: {v:.0}s | epochs ending within it: {epochs_within} (theory: >= 1)"
            );
        }
        None => println!("half-life not reached within the horizon"),
    }
}

use sybil_churn::Epoch;
