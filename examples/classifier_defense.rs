//! Scenario: combining Ergo with a Sybil classifier (ERGO-SF, Heuristic 4).
//!
//! The paper shows that classification alone cannot solve DefID (a small
//! false-negative rate still admits a Sybil majority over enough attempts),
//! but *gating Ergo's entrance* with a classifier keeps Theorem 1's
//! guarantees while cutting costs by up to another order of magnitude.
//!
//! This example grounds the classifier accuracy instead of assuming it:
//! it generates a social graph with a limited attack-edge cut, trains the
//! SybilFuse-style propagation classifier, measures its accuracy, and feeds
//! that measured number into the ERGO-SF gate.
//!
//! Run with: `cargo run --release --example classifier_defense`

use bankrupting_sybil::prelude::*;
use sybil_classifier::{generate, GraphParams, SybilFuse, SybilFuseConfig};

fn main() {
    // --- 1. Train and evaluate the classifier on a social graph ---
    let params = GraphParams { n_good: 3000, n_sybil: 600, edges_per_node: 4, attack_edges: 450 };
    let graph = generate(params, 21);
    let clf = SybilFuse::train(&graph, SybilFuseConfig::default(), 22);
    let confusion = clf.evaluate(&graph);
    println!("--- SybilFuse-style classifier ---");
    println!(
        "graph: {} good + {} Sybil nodes, {} attack edges",
        params.n_good,
        params.n_sybil,
        graph.attack_edge_count()
    );
    println!(
        "accuracy {:.3} | precision {:.3} | recall {:.3} | false-negative rate {:.3}",
        confusion.accuracy(),
        confusion.precision(),
        confusion.recall(),
        confusion.false_negative_rate()
    );

    // --- 2. Why a classifier alone cannot solve DefID ---
    let fnr = confusion.false_negative_rate().max(0.005);
    let attempts_needed = (10_000.0 / fnr) as u64;
    println!(
        "\nclassifier alone: with a false-negative rate of {:.3}, an adversary needs only \
         ~{attempts_needed} join attempts\nto seat 10 000 Sybil IDs — and attempts are free \
         without resource burning. DefID needs both pieces.",
        fnr
    );

    // --- 3. ERGO-SF: the measured accuracy gates Ergo's entrance ---
    let horizon = Time(2_000.0);
    let t = 50_000.0;
    let accuracy = confusion.accuracy();
    let workload = networks::ethereum().generate(horizon, 5);
    let cfg = SimConfig { horizon, adv_rate: t, ..SimConfig::default() };

    let plain = Simulation::new(
        cfg,
        Ergo::new(ErgoConfig::default()),
        BudgetJoiner::new(t),
        workload.clone(),
    )
    .run();
    let gated = Simulation::new(
        cfg,
        Ergo::new(ErgoConfig::default())
            .with_gate(ClassifierGate::with_accuracy(accuracy, 33))
            .with_name(format!("ERGO-SF({:.0})", accuracy * 100.0)),
        BudgetJoiner::new(t),
        workload,
    )
    .run();

    println!("\n--- Ethereum workload, T = {t}/s ---");
    for r in [&plain, &gated] {
        println!(
            "{:>14}: A = {:>9.1}/s | Sybil joins {:>8} (of {:>9} attempts) | purges {:>5} | max bad frac {:.4}",
            r.defense,
            r.good_spend_rate(),
            r.bad_joins_admitted,
            r.bad_join_attempts,
            r.purges,
            r.max_bad_fraction
        );
    }
    println!(
        "\nthe gate refuses {:.0}% of Sybil attempts *after* they paid the entrance \
         challenge,\nso the adversary's budget mostly buys rejections: {:.1}x cost reduction \
         for good IDs.",
        accuracy * 100.0,
        plain.good_spend_rate() / gated.good_spend_rate()
    );
    assert!(gated.max_bad_fraction < 1.0 / 6.0);
}
