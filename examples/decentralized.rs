//! Scenario: running Ergo without a server (paper Section 12).
//!
//! 1. Bootstraps the system with GenID — every participant solves a *real*
//!    SHA-256 proof-of-work challenge — and elects a `Θ(log n)` committee.
//! 2. Demonstrates the committee's synchronous SMR over authenticated
//!    channels, with Byzantine replicas trying to reject and equivocate.
//! 3. Runs the full committee-coordinated defense against an attack and
//!    verifies Theorem 4: identical costs to centralized Ergo, committee
//!    good fraction ≥ 7/8 throughout.
//!
//! Run with: `cargo run --release --example decentralized`

use bankrupting_sybil::prelude::*;
use sybil_committee::{bootstrap, ByzantineMode, DecentralConfig, DecentralizedErgo, SmrCluster};

fn main() {
    // --- 1. GenID bootstrap with real proof-of-work ---
    let n_good = 500;
    let kappa = 1.0 / 18.0;
    let work = sybil_committee::genid::solve_bootstrap_challenges(n_good, b"genesis-nonce");
    let outcome = bootstrap(n_good, kappa, 30.0, 7);
    println!("--- GenID bootstrap ---");
    println!("{} good IDs solved 1-hard PoW challenges ({} total hash units burned)", n_good, work);
    println!(
        "agreed set: {} members ({:.1}% Sybil, kappa bound {:.1}%)",
        outcome.n_members(),
        outcome.bad_fraction() * 100.0,
        kappa * 100.0
    );
    println!(
        "initial committee: {} seats, {:.1}% good (majority: {})",
        outcome.committee.size(),
        outcome.committee.good_fraction() * 100.0,
        outcome.committee.good_majority()
    );

    // --- 2. SMR over authenticated channels ---
    println!("\n--- committee SMR (7 honest, 2 rejecting, 1 equivocating) ---");
    let mut cluster = SmrCluster::new(
        7,
        &[ByzantineMode::RejectAll, ByzantineMode::RejectAll, ByzantineMode::Equivocate],
        b"committee-master-secret",
    );
    for event in [101u64, 102, 103, 104, 105] {
        let committed = cluster.propose(event);
        println!("  propose event {event}: committed = {committed}");
    }
    println!(
        "honest logs consistent: {} | messages exchanged: {}",
        cluster.honest_logs_consistent(),
        cluster.messages_delivered()
    );

    // --- 3. The full decentralized defense under attack ---
    println!("\n--- decentralized Ergo vs centralized, same attack (T = 20 000/s) ---");
    let horizon = Time(1_500.0);
    let t = 20_000.0;
    let workload = networks::gnutella().generate(horizon, 11);
    let cfg = SimConfig { horizon, adv_rate: t, ..SimConfig::default() };

    let (decentral_report, defense) = Simulation::new(
        cfg,
        DecentralizedErgo::new(DecentralConfig::default()),
        PurgeSurvivor::new(t),
        workload.clone(),
    )
    .run_with_defense();
    let central_report =
        Simulation::new(cfg, Ergo::new(ErgoConfig::default()), PurgeSurvivor::new(t), workload)
            .run();

    println!(
        "good spend rate: decentralized {:.1}/s vs centralized {:.1}/s (identical decisions)",
        decentral_report.good_spend_rate(),
        central_report.good_spend_rate()
    );
    println!(
        "committees elected: {} | mean size {:.0} | min good fraction {:.3} (bound 7/8 = 0.875)",
        defense.history().len(),
        defense.history().iter().map(|r| r.elected.size() as f64).sum::<f64>()
            / defense.history().len().max(1) as f64,
        defense.min_committee_good_fraction()
    );
    println!("SMR messages for event sequencing: {}", defense.messages());
    assert!(defense.min_committee_good_fraction() >= 7.0 / 8.0);
    assert!(decentral_report.max_bad_fraction < 1.0 / 6.0);
    println!("\nTheorem 4 invariants verified.");
}
