//! Scenario: incentivizing purge participation (paper Sections 3.1, 13.1).
//!
//! Ergo's purges ask every good ID to re-solve a 1-hard challenge. Why
//! would rational users comply? The paper sketches cryptocurrency-style
//! answers; this example runs them:
//!
//! 1. a **purge lottery** — the smallest solution digest wins a reward, so
//!    committing resources has positive expectation when the reward covers
//!    the round's total cost;
//! 2. **difficulty retargeting** — the "1-hard" unit is re-tuned from
//!    measured solve times, so faster hardware doesn't deflate the
//!    resource cost that the security argument prices in.
//!
//! Run with: `cargo run --release --example incentives`

use ergo_core::incentives::{
    expected_profit, is_individually_rational, DifficultyController, PurgeLottery,
};

fn main() {
    // --- 1. One purge round's lottery ---
    let members = 100u64;
    let lottery = PurgeLottery::new(b"purge-round-4711");
    let entries: Vec<_> = (0..members)
        .map(|i| lottery.enter(&i.to_be_bytes(), /* solution nonce */ i * 7 + 3))
        .collect();
    let winner = PurgeLottery::winner(&entries).expect("nonempty round");
    println!("--- purge lottery (round 4711, {members} participants) ---");
    println!("winning digest: {}...", &winner.digest.to_string()[..16]);
    println!(
        "winner: participant {}",
        u64::from_be_bytes(winner.participant.clone().try_into().expect("8 bytes"))
    );
    println!(
        "verifiable: every other entry's digest is larger -> {}",
        entries.iter().all(|e| winner.digest <= e.digest)
    );

    // --- 2. Participation calculus ---
    println!("\n--- individual rationality ---");
    for reward in [50.0, 100.0, 150.0] {
        println!(
            "reward {reward:>5}: E[profit per member] = {:+.3} -> {}",
            expected_profit(reward, members, 1.0),
            if is_individually_rational(reward, members, 1.0) {
                "rational to participate"
            } else {
                "rational to free-ride"
            }
        );
    }
    println!(
        "(a reward of one coin-base worth ~n units funds the whole round, \
         like a block reward funds mining)"
    );

    // --- 3. Difficulty retargeting across a hardware generation ---
    println!("\n--- retargeting the 1-hard unit (target: 1.0 s per solve) ---");
    let mut ctl = DifficultyController::new(1.0, 1_000.0);
    let mut rate = 1_000.0; // hash units per second
    println!("{:>7} {:>12} {:>12} {:>12}", "round", "hash rate", "hardness", "solve time");
    for round in 0..30 {
        if round == 15 {
            rate *= 10.0; // ASICs arrive overnight
            println!("{:>7} {:>12} {:>12} {:>12}", "-----", "x10 !", "", "");
        }
        let solve_time = ctl.hardness() / rate;
        ctl.observe(solve_time);
        if round % 3 == 0 || (14..20).contains(&round) {
            println!("{round:>7} {rate:>12.0} {:>12.0} {:>11.3}s", ctl.hardness(), solve_time);
        }
    }
    let settled = ctl.hardness() / rate;
    println!("\nsettled solve time after the speedup: {settled:.3}s (target 1.0s)");
    println!(
        "the *economic* cost of a 1-hard challenge is held constant, which is what \
         Theorem 1's resource accounting prices."
    );
}
