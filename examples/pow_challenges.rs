//! Scenario: real resource burning with `k`-hard proof-of-work challenges
//! (paper Section 2's challenge model, instantiated with SHA-256).
//!
//! Demonstrates the properties the defenses rely on: tunable hardness with
//! cost `k` in expectation, solutions bound to the challenger nonce (no
//! pre-computation) and to the solver identity (no theft), and cheap
//! verification. Then prices an actual Ergo entrance queue: a burst of
//! joiners each solving their quoted (escalating) challenge for real.
//!
//! Run with: `cargo run --release --example pow_challenges`

use bankrupting_sybil::prelude::*;
use sybil_crypto::pow::{Challenge, Solver};

fn main() {
    // --- 1. Hardness scaling ---
    println!("--- expected work scales with hardness k ---");
    println!("{:>8} {:>12} {:>14}", "k", "avg work", "wall time");
    for k in [1u64, 8, 64, 512, 4096] {
        let trials = 40;
        let mut solver = Solver::new();
        let start = std::time::Instant::now();
        for i in 0..trials {
            let c = Challenge::new(&(i as u64).to_be_bytes(), b"bench-id", k);
            let s = solver.solve(&c);
            assert!(c.verify(&s));
        }
        println!(
            "{k:>8} {:>12.1} {:>14.2?}",
            solver.work() as f64 / trials as f64,
            start.elapsed() / trials
        );
    }

    // --- 2. Binding properties ---
    println!("\n--- solutions cannot be stolen or pre-computed ---");
    let challenge = Challenge::new(b"fresh-server-nonce", b"alice", 64);
    let solution = Solver::new().solve(&challenge);
    let stolen_by = Challenge::new(b"fresh-server-nonce", b"mallory", 64);
    let replayed = Challenge::new(b"old-server-nonce", b"alice", 64);
    println!("alice's solution verifies for alice:     {}", challenge.verify(&solution));
    println!("alice's solution verifies for mallory:   {}", stolen_by.verify(&solution));
    println!("alice's solution against a stale nonce:  {}", replayed.verify(&solution));

    // --- 3. A real Ergo entrance queue ---
    // Quote each joiner via Ergo, then actually solve the quoted hardness.
    println!("\n--- pricing a join burst with real PoW (Ergo quotes) ---");
    let mut ergo = Ergo::new(ErgoConfig::default());
    use sybil_sim::Defense;
    ergo.init(Time::ZERO, 10_000, 0);
    // 10 joiners arrive within one estimate window.
    let mut total_work = 0u64;
    println!("{:>8} {:>8} {:>12}", "joiner", "quote", "hashes spent");
    for j in 0..10u64 {
        let now = Time(1.0 + j as f64 * 1e-5);
        let quote = ergo.quote(now).value() as u64;
        let mut solver = Solver::new();
        let c = Challenge::new(b"round-nonce", &j.to_be_bytes(), quote.max(1));
        let s = solver.solve(&c);
        assert!(c.verify(&s));
        total_work += solver.work();
        ergo.good_join(now);
        println!("{j:>8} {quote:>8} {:>12}", solver.work());
    }
    println!(
        "\ntotal: {total_work} hash units for 10 joins — the arithmetic series the \
         adversary pays Θ(x²) for,\nwhile a single good joiner pays only the last quote."
    );
}
