//! Quickstart: defend a churning peer-to-peer system with Ergo.
//!
//! Runs the Ergo defense and the CCom baseline against the same Sybil
//! attack on the paper's Gnutella workload, then prints the two guarantees
//! of Theorem 1: the Sybil fraction never reaches 1/6, and good IDs burn
//! far less than they would under a constant-entrance-cost defense.
//!
//! Run with: `cargo run --release --example quickstart`

use bankrupting_sybil::prelude::*;

fn main() {
    // 1. A churn workload: Gnutella-like (10 000 initial IDs, Poisson
    //    arrivals at 1 ID/s, exponential 2.3 h sessions).
    let horizon = Time(2_000.0);
    let workload = networks::gnutella().generate(horizon, 42);
    println!(
        "workload: {} initial IDs, {} arrivals over {}",
        workload.initial_size(),
        workload.sessions.len(),
        horizon
    );

    // 2. An adversary spending T = 50 000 resource units per second on
    //    entrance challenges.
    let t = 50_000.0;
    let cfg = SimConfig { horizon, adv_rate: t, ..SimConfig::default() };

    // 3. Run Ergo and the CCom baseline on identical inputs.
    let ergo = Simulation::new(
        cfg,
        Ergo::new(ErgoConfig::default()),
        BudgetJoiner::new(t),
        workload.clone(),
    )
    .run();
    let ccom =
        Simulation::new(cfg, Ergo::new(ErgoConfig::ccom()), BudgetJoiner::new(t), workload).run();

    // 4. The guarantees.
    println!("\n--- DefID invariant (Lemma 9): Sybil fraction < 1/6 at all times ---");
    for r in [&ergo, &ccom] {
        println!(
            "{:>6}: max bad fraction {:.4} (bound {:.4}) -> {}",
            r.defense,
            r.max_bad_fraction,
            1.0 / 6.0,
            if r.max_bad_fraction < 1.0 / 6.0 { "HELD" } else { "VIOLATED" }
        );
    }

    println!("\n--- resource burning (A = good spend rate, T = adversary spend rate) ---");
    for r in [&ergo, &ccom] {
        println!(
            "{:>6}: A = {:>10.1}/s   T = {:>9.1}/s   Sybil joins admitted: {:>9}   purges: {}",
            r.defense,
            r.good_spend_rate(),
            r.adv_spend_rate(),
            r.bad_joins_admitted,
            r.purges,
        );
    }
    let factor = ccom.good_spend_rate() / ergo.good_spend_rate();
    println!(
        "\nErgo's escalating entrance costs throttle the attack: good IDs spend {factor:.1}x \
         less than under CCom.\n(At the paper's Figure-8 scale the gap reaches two orders of \
         magnitude; see `cargo bench --bench figure8`.)"
    );
}
