//! Scenario: a Sybil-resistant distributed hash table (paper Section 13.2).
//!
//! Builds a Chord-style ring whose membership comes from an Ergo-defended
//! system under heavy attack, then compares routing strategies: a single
//! greedy path (dies on any Sybil hop), independent path retries
//! (saturate), and wide paths with successor-list replication (near-perfect
//! — but only because Ergo pins the Sybil fraction below 1/6).
//!
//! Run with: `cargo run --release --example sybil_dht`

use bankrupting_sybil::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sybil_dht::experiment::{run_cell, Strategy};
use sybil_dht::{lookup_wide, Ring};
use sybil_sim::id::Id;

fn main() {
    // --- 1. Strategy comparison on fixed Sybil fractions ---
    println!("--- lookup success rate by routing strategy (2000-node ring) ---");
    println!("{:>13} {:>10} {:>10} {:>10}", "bad fraction", "greedy-1", "paths-8", "wide-8");
    for f in [0.0, 0.05, 1.0 / 6.0 - 0.01, 0.30, 0.50] {
        let g = run_cell(2_000, f, Strategy::Greedy, 400, 3);
        let p = run_cell(2_000, f, Strategy::RedundantPaths(8), 400, 3);
        let w = run_cell(2_000, f, Strategy::WidePath(8), 400, 3);
        println!(
            "{:>13.3} {:>10.3} {:>10.3} {:>10.3}",
            g.bad_fraction, g.success_rate, p.success_rate, w.success_rate
        );
    }
    println!(
        "\nwide paths only work while the Sybil fraction is bounded — \
         the bound is what Ergo provides."
    );

    // --- 2. End to end: membership from an Ergo run under attack ---
    let horizon = Time(1_500.0);
    let t = 50_000.0;
    println!(
        "\n--- DHT over an Ergo-defended membership (T = {t}/s, purge-surviving attacker) ---"
    );
    let workload = networks::gnutella().generate(horizon, 13);
    let cfg = SimConfig { horizon, adv_rate: t, ..SimConfig::default() };
    let report =
        Simulation::new(cfg, Ergo::new(ErgoConfig::default()), PurgeSurvivor::new(t), workload)
            .run();
    let n_bad = report.final_bad;
    let n_good = report.final_members - n_bad;
    println!(
        "membership after the attack: {} nodes, Sybil fraction {:.4} (bound 1/6)",
        report.final_members,
        n_bad as f64 / report.final_members as f64
    );

    let ring = Ring::from_members(
        (0..n_good).map(|i| (Id(i), false)).chain((0..n_bad).map(|i| (Id((1 << 41) | i), true))),
    );
    let mut rng = StdRng::seed_from_u64(99);
    let trials = 500;
    let ok =
        (0..trials).filter(|_| lookup_wide(&ring, rng.gen(), 8, &mut rng).is_success()).count();
    println!(
        "wide-8 lookups on that ring: {}/{} successful ({:.1}%)",
        ok,
        trials,
        100.0 * ok as f64 / trials as f64
    );
    assert!(report.max_bad_fraction < 1.0 / 6.0);
}
