//! `ergo-sim` — run a Sybil-defense simulation from the command line.
//!
//! ```text
//! Usage: ergo-sim [OPTIONS]
//!
//!   --network   bitcoin|bittorrent|gnutella|ethereum   (default gnutella)
//!   --defense   ergo|ccom|ergo-ch1|ergo-ch2|ergo-sf|sybilcontrol|remp
//!                                                      (default ergo)
//!   --adversary budget|burst|churn|survivor            (default budget)
//!   --t         adversary spend rate per second        (default 10000)
//!   --horizon   simulated seconds                      (default 2000)
//!   --seed      RNG seed                               (default 1)
//!   --accuracy  classifier accuracy for ergo-sf        (default 0.98)
//!   --timeline  print a membership timeline every N seconds
//! ```
//!
//! Example:
//!
//! ```text
//! cargo run --release --bin ergo-sim -- --network ethereum --defense ergo-sf --t 65536
//! ```

use bankrupting_sybil::prelude::*;
use sybil_defenses as defs;
use sybil_sim::adversary::Adversary;
use sybil_sim::Defense as DefenseTrait;

struct Options {
    network: String,
    defense: String,
    adversary: String,
    t: f64,
    horizon: f64,
    seed: u64,
    accuracy: f64,
    timeline: Option<f64>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        network: "gnutella".into(),
        defense: "ergo".into(),
        adversary: "budget".into(),
        t: 10_000.0,
        horizon: 2_000.0,
        seed: 1,
        accuracy: 0.98,
        timeline: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = args.get(i + 1).ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--network" => opts.network = value.clone(),
            "--defense" => opts.defense = value.clone(),
            "--adversary" => opts.adversary = value.clone(),
            "--t" => opts.t = value.parse().map_err(|e| format!("--t: {e}"))?,
            "--horizon" => opts.horizon = value.parse().map_err(|e| format!("--horizon: {e}"))?,
            "--seed" => opts.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--accuracy" => {
                opts.accuracy = value.parse().map_err(|e| format!("--accuracy: {e}"))?
            }
            "--timeline" => {
                opts.timeline = Some(value.parse().map_err(|e| format!("--timeline: {e}"))?)
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(opts)
}

fn network(name: &str) -> Result<ChurnModel, String> {
    Ok(match name {
        "bitcoin" => networks::bitcoin(),
        "bittorrent" => networks::bittorrent(),
        "gnutella" => networks::gnutella(),
        "ethereum" => networks::ethereum(),
        other => return Err(format!("unknown network {other}")),
    })
}

fn defense(opts: &Options) -> Result<Box<dyn DefenseTrait>, String> {
    Ok(match opts.defense.as_str() {
        "ergo" => Box::new(defs::ergo()),
        "ccom" => Box::new(defs::ccom()),
        "ergo-ch1" => Box::new(defs::ergo_ch1()),
        "ergo-ch2" => Box::new(defs::ergo_ch2()),
        "ergo-sf" => Box::new(defs::ergo_sf_full(opts.accuracy, opts.seed)),
        "sybilcontrol" => Box::new(defs::SybilControl::default()),
        "remp" => Box::new(defs::Remp::default()),
        other => return Err(format!("unknown defense {other}")),
    })
}

fn run<A: Adversary>(opts: &Options, adversary: A) -> Result<SimReport, String> {
    let net = network(&opts.network)?;
    let workload = net.generate(Time(opts.horizon), opts.seed);
    let cfg = SimConfig {
        horizon: Time(opts.horizon),
        adv_rate: opts.t,
        timeline_resolution: opts.timeline,
        ..SimConfig::default()
    };
    Ok(Simulation::new(cfg, defense(opts)?, adversary, workload).run())
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: ergo-sim [--network bitcoin|bittorrent|gnutella|ethereum]\n\
                 \x20               [--defense ergo|ccom|ergo-ch1|ergo-ch2|ergo-sf|sybilcontrol|remp]\n\
                 \x20               [--adversary budget|burst|churn|survivor]\n\
                 \x20               [--t RATE] [--horizon SECS] [--seed N]\n\
                 \x20               [--accuracy P] [--timeline SECS]"
            );
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    let result = match opts.adversary.as_str() {
        "budget" => run(&opts, BudgetJoiner::new(opts.t)),
        "burst" => run(&opts, BurstJoiner::new(opts.t, 60.0)),
        "churn" => run(&opts, ChurnForcer::new(opts.t)),
        "survivor" => run(&opts, PurgeSurvivor::new(opts.t)),
        other => Err(format!("unknown adversary {other}")),
    };
    let report = match result {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    println!("defense:      {}", report.defense);
    println!("adversary:    {} (T = {}/s)", report.adversary, opts.t);
    println!("network:      {} over {} s", opts.network, opts.horizon);
    println!();
    println!("good spend rate A:     {:>12.2}/s", report.good_spend_rate());
    println!("adversary spend rate:  {:>12.2}/s", report.adv_spend_rate());
    println!(
        "  good breakdown:      entrance {:.0} | purge {:.0} | periodic {:.0}",
        report.ledger.good_entrance().value(),
        report.ledger.good_purge().value(),
        report.ledger.good_periodic().value()
    );
    println!(
        "joins:                 good {} (refused {}) | Sybil {} (of {} attempts)",
        report.good_joins_admitted,
        report.good_joins_refused,
        report.bad_joins_admitted,
        report.bad_join_attempts
    );
    println!("purges:                {} (skipped {})", report.purges, report.purges_skipped);
    println!(
        "bad fraction:          max {:.4} | mean {:.4} | bound {:.4} -> {}",
        report.max_bad_fraction,
        report.mean_bad_fraction,
        1.0 / 6.0,
        if report.max_bad_fraction < 1.0 / 6.0 { "INVARIANT HELD" } else { "VIOLATED" }
    );
    println!("final membership:      {} ({} Sybil)", report.final_members, report.final_bad);
    if !report.estimates.is_empty() {
        let last = report.estimates.last().expect("nonempty");
        println!(
            "estimator:             {} intervals, final J-hat = {:.3}/s",
            report.estimates.len(),
            last.estimate
        );
    }
    if !report.timeline.is_empty() {
        println!("\n{:>10} {:>10} {:>8} {:>10}", "time", "members", "Sybil", "bad frac");
        for p in &report.timeline {
            println!(
                "{:>10.0} {:>10} {:>8} {:>10.4}",
                p.at.as_secs(),
                p.members,
                p.bad,
                p.bad as f64 / p.members.max(1) as f64
            );
        }
    }
}
