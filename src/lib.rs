//! **bankrupting-sybil** — a from-scratch Rust reproduction of
//! *Bankrupting Sybil Despite Churn* (Gupta, Saia, Young — ICDCS 2021,
//! extended version arXiv:2010.06834).
//!
//! A Sybil attack floods a permissionless system with adversary-controlled
//! identifiers. The classic defense is resource burning (e.g. proof-of-work
//! entrance challenges), but traditional schemes make honest participants
//! pay at least as much as the attacker, all the time. This paper's
//! contribution — the **Ergo** defense — guarantees:
//!
//! 1. the fraction of Sybil IDs stays below `3κ ≤ 1/6` at all times
//!    (so Byzantine agreement & friends remain usable), and
//! 2. the good IDs' resource-burning rate is `O(√(T·J) + J)` — *sublinear*
//!    in the adversary's spend rate `T` and proportional to the good join
//!    rate `J` when there is no attack — despite churn whose rate may vary
//!    exponentially (the ABC model). A matching lower bound shows this is
//!    asymptotically optimal for a natural class of algorithms.
//!
//! # Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`](ergo_core) | Ergo, GoodJEst, heuristics, DefID invariant — the paper's contribution |
//! | [`sim`](sybil_sim) | discrete-event engine, cost ledger, adversary strategies, distributions |
//! | [`churn`](sybil_churn) | Bitcoin/BitTorrent/Ethereum/Gnutella workloads, ABC model tools |
//! | [`crypto`](sybil_crypto) | SHA-256, HMAC, `k`-hard proof-of-work challenges (from scratch) |
//! | [`classifier`](sybil_classifier) | SybilFuse-style graph classifier for ERGO-SF |
//! | [`defenses`](sybil_defenses) | CCom, SybilControl, REMP baselines; Theorem-3 lower bound |
//! | [`net`](sybil_net) | synchronous authenticated message passing |
//! | [`committee`](sybil_committee) | GenID, committee election, SMR, decentralized Ergo |
//! | [`dht`](sybil_dht) | Sybil-resistant DHT (Section 13.2 future work, built) |
//!
//! # Example
//!
//! ```
//! use bankrupting_sybil::prelude::*;
//!
//! let workload = networks::gnutella().generate(Time(500.0), 7);
//! let cfg = SimConfig { horizon: Time(500.0), adv_rate: 1000.0, ..SimConfig::default() };
//! let report = Simulation::new(
//!     cfg,
//!     Ergo::new(ErgoConfig::default()),
//!     BudgetJoiner::new(1000.0),
//!     workload,
//! ).run();
//! assert!(report.max_bad_fraction < 1.0 / 6.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ergo_core;
pub use sybil_churn;
pub use sybil_classifier;
pub use sybil_committee;
pub use sybil_crypto;
pub use sybil_defenses;
pub use sybil_dht;
pub use sybil_net;
pub use sybil_sim;

/// The most common imports for driving simulations.
pub mod prelude {
    pub use ergo_core::{ClassifierGate, DefIdChecker, Ergo, ErgoConfig, GoodJEst, Heuristics};
    pub use sybil_churn::{networks, AbcTraceGenerator, ChurnModel};
    pub use sybil_sim::adversary::{
        BudgetJoiner, BurstJoiner, ChurnForcer, FractionKeeper, NullAdversary, PurgeSurvivor,
    };
    pub use sybil_sim::{Cost, Defense, Session, SimConfig, SimReport, Simulation, Time, Workload};
}
