//! Integration tests binding the concrete PoW backend to the defense layer:
//! Ergo's abstract quotes are realizable as real SHA-256 challenges whose
//! expected work equals the quoted cost.

use bankrupting_sybil::prelude::*;
use sybil_crypto::pow::{Challenge, Solver};
use sybil_crypto::sha256::Sha256;
use sybil_net::auth::AuthKeys;
use sybil_net::network::NodeId;

#[test]
fn quoted_entrance_costs_are_solvable_pow_challenges() {
    use sybil_sim::Defense;
    let mut ergo = Ergo::new(ErgoConfig::default());
    ergo.init(Time::ZERO, 5_000, 0);

    // A burst of joiners within one window: quotes escalate 1, 2, 3, ...
    let mut total_work = 0u64;
    let mut total_quoted = 0u64;
    for j in 0..20u64 {
        let now = Time(1.0 + j as f64 * 1e-6);
        let quote = ergo.quote(now).value() as u64;
        assert_eq!(quote, j + 1, "arithmetic escalation");
        let challenge = Challenge::new(b"server-round-7", &j.to_be_bytes(), quote);
        let mut solver = Solver::new();
        let solution = solver.solve(&challenge);
        assert!(challenge.verify(&solution));
        total_work += solver.work();
        total_quoted += quote;
        ergo.good_join(now);
    }
    // Expected work equals the quoted series (1+2+...+20 = 210) within
    // stochastic slack; this seals the abstract-cost ↔ real-work bridge.
    let ratio = total_work as f64 / total_quoted as f64;
    assert!((0.3..3.0).contains(&ratio), "work {total_work} vs quoted {total_quoted}");
}

#[test]
fn purge_challenges_are_fresh_per_round() {
    // Solutions from a previous purge round must not verify in the next.
    // (At hardness 1 any nonce qualifies — the deterrent there is the work
    // itself — so freshness is demonstrated at hardness 16.)
    let round1 = Challenge::new(b"purge-round-1", b"member-42", 16);
    let solution = Solver::new().solve(&round1);
    let round2 = Challenge::new(b"purge-round-2", b"member-42", 16);
    assert!(round1.verify(&solution));
    assert!(!round2.verify(&solution));
}

#[test]
fn committee_channel_authentication_end_to_end() {
    // Committee members derive pairwise keys from the GenID master secret;
    // a Sybil member cannot forge inter-member traffic.
    let master = Sha256::digest(b"genid-agreed-randomness");
    let keys = AuthKeys::new(master.as_bytes());
    let alice = NodeId(1);
    let bob = NodeId(2);
    let sealed = keys.seal(alice, bob, b"vote: purge at t=812.5");
    assert!(keys.open(&sealed).is_some());

    // Sybil with a different (guessed) master secret:
    let sybil_keys = AuthKeys::new(b"wrong-guess");
    let forged = sybil_keys.seal(alice, bob, b"vote: skip the purge");
    assert!(keys.open(&forged).is_none(), "forged message must not verify");
}

#[test]
fn hardness_one_purge_cost_matches_model() {
    // The simulation charges cost 1 per purge survivor; a 1-hard challenge
    // takes exactly one hash attempt (any digest beats target u128::MAX).
    let mut solver = Solver::new();
    for member in 0..100u64 {
        let c = Challenge::new(b"purge-nonce", &member.to_be_bytes(), 1);
        let s = solver.solve(&c);
        assert!(c.verify(&s));
    }
    assert_eq!(solver.work(), 100);
}
