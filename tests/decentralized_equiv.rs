//! Integration tests for the decentralized variant (Section 12 / Theorem 4):
//! committee-coordinated Ergo makes byte-identical membership decisions to
//! the centralized version, and the committee invariants of Lemma 18 hold
//! under attack.

use bankrupting_sybil::prelude::*;
use sybil_committee::{ByzantineMode, DecentralConfig, DecentralizedErgo, SmrCluster};

const HORIZON: Time = Time(700.0);

#[test]
fn decentralized_matches_centralized_across_adversaries() {
    let workload = networks::bittorrent().generate(HORIZON, 81);
    for t in [0.0, 8_000.0] {
        let cfg = SimConfig { horizon: HORIZON, adv_rate: t, ..SimConfig::default() };
        let central = Simulation::new(
            cfg,
            Ergo::new(ErgoConfig::default()),
            PurgeSurvivor::new(t),
            workload.clone(),
        )
        .run();
        let decentral = Simulation::new(
            cfg,
            DecentralizedErgo::new(DecentralConfig::default()),
            PurgeSurvivor::new(t),
            workload.clone(),
        )
        .run();
        assert_eq!(central.ledger, decentral.ledger, "T={t}");
        assert_eq!(central.purges, decentral.purges, "T={t}");
        assert_eq!(central.bad_joins_admitted, decentral.bad_joins_admitted, "T={t}");
        assert_eq!(central.final_members, decentral.final_members, "T={t}");
    }
}

#[test]
fn committee_bound_holds_under_worst_case_retention() {
    let workload = networks::gnutella().generate(HORIZON, 83);
    let t = 20_000.0;
    let cfg = SimConfig { horizon: HORIZON, adv_rate: t, ..SimConfig::default() };
    let (report, defense) = Simulation::new(
        cfg,
        DecentralizedErgo::new(DecentralConfig::default()),
        PurgeSurvivor::new(t),
        workload,
    )
    .run_with_defense();
    assert!(report.max_bad_fraction < 1.0 / 6.0);
    assert!(defense.history().len() > 10, "too few elections");
    assert!(
        defense.min_committee_good_fraction() >= 7.0 / 8.0,
        "Lemma 18 violated: {}",
        defense.min_committee_good_fraction()
    );
    // Committee size stays Θ(log n): within [200, 350] for n ≈ 10⁴.
    for rec in defense.history() {
        let size = rec.elected.size();
        assert!((200..=350).contains(&size), "committee size {size}");
    }
}

#[test]
fn smr_is_safe_across_byzantine_mixes() {
    for byz in [
        vec![],
        vec![ByzantineMode::RejectAll; 4],
        vec![ByzantineMode::Silent; 4],
        vec![ByzantineMode::Equivocate; 4],
        vec![ByzantineMode::RejectAll, ByzantineMode::Silent, ByzantineMode::Equivocate],
    ] {
        let mut cluster = SmrCluster::new(9, &byz, b"integration-secret");
        let mut committed = 0;
        for entry in 0..30 {
            if cluster.propose(entry) {
                committed += 1;
            }
        }
        assert!(cluster.honest_logs_consistent(), "split logs with {byz:?}");
        assert_eq!(committed, 30, "honest majority must commit everything ({byz:?})");
    }
}

#[test]
fn smr_liveness_fails_without_majority_but_safety_holds() {
    let mut cluster = SmrCluster::new(4, &[ByzantineMode::RejectAll; 6], b"secret");
    for entry in 0..10 {
        assert!(!cluster.propose(entry), "minority cluster must not commit");
    }
    assert!(cluster.honest_logs_consistent());
    assert_eq!(cluster.honest_log_len(), 0);
}

#[test]
fn genid_plus_decentralized_pipeline() {
    // Bootstrap via GenID, seed the engine with its κ-bounded Sybil
    // population, and run the decentralized defense on top.
    let outcome = sybil_committee::bootstrap(10_000, 1.0 / 18.0, 30.0, 89);
    assert!(outcome.committee.good_majority());
    let workload = networks::gnutella().generate(HORIZON, 89);
    let cfg = SimConfig {
        horizon: HORIZON,
        adv_rate: 5_000.0,
        initial_bad: outcome.n_bad,
        ..SimConfig::default()
    };
    let (report, defense) = Simulation::new(
        cfg,
        DecentralizedErgo::new(DecentralConfig::default()),
        PurgeSurvivor::new(5_000.0),
        workload,
    )
    .run_with_defense();
    assert!(report.max_bad_fraction < 1.0 / 6.0, "{}", report.max_bad_fraction);
    assert!(defense.min_committee_good_fraction() >= 7.0 / 8.0);
}
