//! Integration tests for GoodJEst against the ABC model (Theorem 2): the
//! estimate tracks the true per-epoch good join rate within bounded factors,
//! across smoothness regimes and under attack.

use bankrupting_sybil::prelude::*;
use sybil_churn::detect_epochs;

/// Replays a workload through Ergo and returns (estimate, true-epoch-rate)
/// pairs sampled at each estimator update.
fn estimate_vs_epoch_rate(workload: Workload, horizon: Time, t: f64) -> Vec<(f64, f64)> {
    let epochs = detect_epochs(&workload, horizon, (1, 2));
    let cfg = SimConfig { horizon, adv_rate: t, ..SimConfig::default() };
    let report =
        Simulation::new(cfg, Ergo::new(ErgoConfig::default()), BudgetJoiner::new(t), workload)
            .run();
    assert!(report.max_bad_fraction < 1.0 / 6.0, "Theorem 2 precondition");
    report
        .estimates
        .iter()
        .filter_map(|e| {
            // The epoch containing the interval's end.
            let rho = epochs
                .iter()
                .find(|ep| ep.start <= e.end && e.end <= ep.end)
                .map(sybil_churn::Epoch::rho)?;
            (rho > 0.0).then_some((e.estimate, rho))
        })
        .collect()
}

#[test]
fn estimates_track_epoch_rates_on_abc_traces() {
    // Theorem 2's envelope is ρ/(88α⁴β³) … 1867α⁴β⁵ρ; empirically the
    // estimate stays within a factor ~25 on smooth traces (the paper
    // observes "within a factor of 10, often much closer" on its data).
    for (alpha, beta) in [(1.0, 1.0), (2.0, 1.0), (1.5, 2.0)] {
        let gen = AbcTraceGenerator { n0: 1500, rho0: 5.0, alpha, beta, epochs: 12 };
        let workload = gen.generate(61);
        let horizon = workload.sessions.last().map_or(Time(10.0), |s| s.join + 1.0);
        let pairs = estimate_vs_epoch_rate(workload, horizon, 0.0);
        assert!(pairs.len() >= 3, "too few samples (alpha={alpha}, beta={beta})");
        for (est, rho) in pairs {
            let ratio = est / rho;
            assert!(
                (1.0 / 25.0..25.0).contains(&ratio),
                "alpha={alpha} beta={beta}: est {est} vs rho {rho} (ratio {ratio})"
            );
        }
    }
}

#[test]
fn estimates_survive_attack_within_theorem2_regime() {
    // "This theorem holds no matter how the adversary injects bad IDs."
    let gen = AbcTraceGenerator { n0: 1500, rho0: 5.0, alpha: 1.5, beta: 1.0, epochs: 12 };
    let workload = gen.generate(67);
    let horizon = workload.sessions.last().map_or(Time(10.0), |s| s.join + 1.0);
    let pairs = estimate_vs_epoch_rate(workload, horizon, 2_000.0);
    assert!(!pairs.is_empty());
    for (est, rho) in pairs {
        let ratio = est / rho;
        assert!(
            (1.0 / 40.0..40.0).contains(&ratio),
            "under attack: est {est} vs rho {rho} (ratio {ratio})"
        );
    }
}

#[test]
fn estimate_adapts_to_exponentially_growing_rate() {
    // α-smoothness allows ρ to double per epoch; the estimator must follow.
    // Build a trace with deterministic doubling via back-to-back generators.
    let gen = AbcTraceGenerator { n0: 1000, rho0: 2.0, alpha: 2.0, beta: 1.0, epochs: 14 };
    let workload = gen.generate(71);
    let horizon = workload.sessions.last().map_or(Time(10.0), |s| s.join + 1.0);
    let cfg = SimConfig { horizon, ..SimConfig::default() };
    let report =
        Simulation::new(cfg, Ergo::new(ErgoConfig::default()), NullAdversary, workload.clone())
            .run();
    let epochs = detect_epochs(&workload, horizon, (1, 2));
    let rates: Vec<f64> = epochs.iter().map(sybil_churn::Epoch::rho).collect();
    let spread = rates.iter().cloned().fold(f64::MIN, f64::max)
        / rates.iter().cloned().fold(f64::MAX, f64::min);
    // The estimator's updates must span a comparable dynamic range when the
    // true rate really moved.
    if spread > 4.0 {
        let ests: Vec<f64> = report.estimates.iter().map(|e| e.estimate).collect();
        let est_spread = ests.iter().cloned().fold(f64::MIN, f64::max)
            / ests.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            est_spread > spread / 8.0,
            "estimates too static: spread {est_spread} vs true {spread}"
        );
    }
}

#[test]
fn update_count_grows_with_churn() {
    let slow =
        AbcTraceGenerator { n0: 1000, rho0: 1.0, alpha: 1.0, beta: 1.0, epochs: 4 }.generate(73);
    let fast =
        AbcTraceGenerator { n0: 1000, rho0: 16.0, alpha: 1.0, beta: 1.0, epochs: 4 }.generate(73);
    // Same logical epochs, 16x the rate: the fast trace is 16x shorter in
    // wall time but completes the same number of intervals.
    let h_slow = slow.sessions.last().map(|s| s.join + 1.0).expect("sessions");
    let h_fast = fast.sessions.last().map(|s| s.join + 1.0).expect("sessions");
    assert!(h_fast.as_secs() < h_slow.as_secs() / 8.0);
    let slow_pairs = estimate_vs_epoch_rate(slow, h_slow, 0.0);
    let fast_pairs = estimate_vs_epoch_rate(fast, h_fast, 0.0);
    let diff = (slow_pairs.len() as i64 - fast_pairs.len() as i64).abs();
    assert!(diff <= 2, "interval counts diverge: {} vs {}", slow_pairs.len(), fast_pairs.len());
}
