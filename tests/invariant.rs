//! Integration tests for the DefID invariant (Theorem 1 / Lemma 9): the
//! Sybil fraction stays below `3κ ≤ 1/6` across networks, adversary
//! strategies, and spend rates — including the purge-survivor worst case.

use bankrupting_sybil::prelude::*;
use ergo_core::DefIdChecker;

const HORIZON: Time = Time(800.0);

fn run_with<A: sybil_sim::adversary::Adversary>(
    net: &ChurnModel,
    adversary: A,
    t: f64,
    seed: u64,
) -> SimReport {
    let workload = net.generate(HORIZON, seed);
    let cfg = SimConfig { horizon: HORIZON, adv_rate: t, ..SimConfig::default() };
    Simulation::new(cfg, Ergo::new(ErgoConfig::default()), adversary, workload).run()
}

#[test]
fn invariant_holds_across_networks_and_rates() {
    let checker = DefIdChecker::default();
    for net in networks::all_networks() {
        for t in [100.0, 10_000.0] {
            let r = run_with(&net, BudgetJoiner::new(t), t, 31);
            assert!(
                r.max_bad_fraction < checker.bound(),
                "{} at T={t}: fraction {}",
                net.name,
                r.max_bad_fraction
            );
        }
    }
}

#[test]
fn invariant_holds_against_purge_survivor() {
    // The Lemma 9 worst case: the adversary retains ⌊κN⌋ at every purge AND
    // keeps joining. The bound is 3κ, approached but never reached.
    let net = networks::gnutella();
    for t in [1_000.0, 100_000.0] {
        let r = run_with(&net, PurgeSurvivor::new(t), t, 37);
        assert!(r.max_bad_fraction < 1.0 / 6.0, "T={t}: fraction {}", r.max_bad_fraction);
        // The survivor actually paid purge retention.
        assert!(r.ledger.adversary_purge().value() > 0.0);
    }
}

#[test]
fn invariant_holds_against_churn_forcer_with_heuristic2() {
    // The churn-forcer drives purge frequency on plain Ergo; Heuristic 2
    // (symmetric-difference trigger) neutralizes the attack. Both keep the
    // invariant; H2 purges far less.
    let net = networks::gnutella();
    let t = 5_000.0;
    let workload = net.generate(HORIZON, 41);
    let cfg = SimConfig { horizon: HORIZON, adv_rate: t, ..SimConfig::default() };
    let plain = Simulation::new(
        cfg,
        Ergo::new(ErgoConfig::default()),
        ChurnForcer::new(t),
        workload.clone(),
    )
    .run();
    let h2 = Simulation::new(
        cfg,
        Ergo::new(ErgoConfig::with_heuristics(Heuristics::ch1())),
        ChurnForcer::new(t),
        workload,
    )
    .run();
    assert!(plain.max_bad_fraction < 1.0 / 6.0);
    assert!(h2.max_bad_fraction < 1.0 / 6.0);
    assert!(
        h2.purges < plain.purges / 2,
        "H2 should purge far less under churn-forcing: {} vs {}",
        h2.purges,
        plain.purges
    );
}

#[test]
fn invariant_holds_with_initial_bad_population() {
    // Start with a Sybil population already seated (bounded by κ, as GenID
    // guarantees) and attack on top of it.
    let net = networks::bittorrent();
    let workload = net.generate(HORIZON, 43);
    let initial_bad = (workload.initial_size() as f64 / 18.0) as u64;
    let cfg =
        SimConfig { horizon: HORIZON, adv_rate: 10_000.0, initial_bad, ..SimConfig::default() };
    let r = Simulation::new(
        cfg,
        Ergo::new(ErgoConfig::default()),
        BudgetJoiner::new(10_000.0),
        workload,
    )
    .run();
    assert!(r.max_bad_fraction < 1.0 / 6.0, "fraction {}", r.max_bad_fraction);
    // The initial Sybils were eventually purged.
    assert!(r.final_bad < initial_bad);
}

#[test]
fn heuristic_variants_preserve_the_invariant() {
    let net = networks::ethereum();
    let t = 20_000.0;
    let workload = net.generate(HORIZON, 47);
    let cfg = SimConfig { horizon: HORIZON, adv_rate: t, ..SimConfig::default() };
    for defense in [
        sybil_defenses::ergo_ch1(),
        sybil_defenses::ergo_ch2(),
        sybil_defenses::ergo_sf_full(0.92, 1),
        sybil_defenses::ergo_sf_full(0.98, 2),
    ] {
        let name = {
            use sybil_sim::Defense;
            defense.name()
        };
        let r = Simulation::new(cfg, defense, BudgetJoiner::new(t), workload.clone()).run();
        assert!(r.max_bad_fraction < 1.0 / 6.0, "{name}: fraction {}", r.max_bad_fraction);
    }
}

#[test]
fn purge_cap_limits_retention_to_kappa() {
    // However much the adversary is willing to pay, the model caps purge
    // survival at ⌊κN⌋ per round.
    let net = networks::gnutella();
    let r = run_with(&net, PurgeSurvivor::new(1e6), 1e6, 53);
    // Right after a purge the fraction is at most ~κ/(1-ε); given fresh
    // joins between purges it peaks below 3κ. Mean is well below max.
    assert!(r.mean_bad_fraction < r.max_bad_fraction);
    assert!(r.mean_bad_fraction < 0.12, "mean {}", r.mean_bad_fraction);
}
