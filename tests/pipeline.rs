//! End-to-end pipeline tests: determinism, conservation laws, and
//! cross-defense cost orderings on identical inputs.

use bankrupting_sybil::prelude::*;
use sybil_defenses::{Remp, RempConfig, SybilControl};

const HORIZON: Time = Time(600.0);

fn gnutella_run<D: Defense>(defense: D, t: f64, seed: u64) -> SimReport {
    let workload = networks::gnutella().generate(HORIZON, seed);
    let cfg = SimConfig { horizon: HORIZON, adv_rate: t, ..SimConfig::default() };
    Simulation::new(cfg, defense, BudgetJoiner::new(t), workload).run()
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = gnutella_run(Ergo::new(ErgoConfig::default()), 5_000.0, 7);
    let b = gnutella_run(Ergo::new(ErgoConfig::default()), 5_000.0, 7);
    assert_eq!(a.ledger, b.ledger);
    assert_eq!(a.bad_joins_admitted, b.bad_joins_admitted);
    assert_eq!(a.purges, b.purges);
    assert_eq!(a.final_members, b.final_members);
    let c = gnutella_run(Ergo::new(ErgoConfig::default()), 5_000.0, 8);
    assert_ne!(a.ledger, c.ledger, "different seeds should differ");
}

#[test]
fn adversary_never_overspends_its_budget() {
    for t in [10.0, 1_000.0, 100_000.0] {
        let r = gnutella_run(Ergo::new(ErgoConfig::default()), t, 11);
        let budget = t * HORIZON.as_secs();
        assert!(
            r.ledger.adversary_total().value() <= budget * 1.0001,
            "T={t}: spent {} of {budget}",
            r.ledger.adversary_total().value()
        );
    }
}

#[test]
fn membership_conservation() {
    let r = gnutella_run(Ergo::new(ErgoConfig::default()), 2_000.0, 13);
    let workload = networks::gnutella().generate(HORIZON, 13);
    // Good members: initial + admitted - departed == final good.
    let expected_good = workload.initial_size() + r.good_joins_admitted - r.good_departures;
    assert_eq!(r.final_members - r.final_bad, expected_good);
    // Every admitted good join cost at least 1.
    assert!(r.ledger.good_entrance().value() >= r.good_joins_admitted as f64);
}

#[test]
fn cost_ordering_under_attack() {
    let t = 30_000.0;
    let ergo = gnutella_run(Ergo::new(ErgoConfig::default()), t, 17);
    let ccom = gnutella_run(Ergo::new(ErgoConfig::ccom()), t, 17);
    let sf = gnutella_run(sybil_defenses::ergo_sf(0.98, 3), t, 17);
    assert!(
        ergo.good_spend_rate() < 0.5 * ccom.good_spend_rate(),
        "ERGO {} vs CCOM {}",
        ergo.good_spend_rate(),
        ccom.good_spend_rate()
    );
    assert!(
        sf.good_spend_rate() < 0.8 * ergo.good_spend_rate(),
        "ERGO-SF {} vs ERGO {}",
        sf.good_spend_rate(),
        ergo.good_spend_rate()
    );
}

#[test]
fn remp_cost_is_flat_across_attack_rates() {
    let low = gnutella_run(Remp::new(RempConfig { t_max: 1e5, ..RempConfig::default() }), 10.0, 19);
    let high =
        gnutella_run(Remp::new(RempConfig { t_max: 1e5, ..RempConfig::default() }), 50_000.0, 19);
    let ratio = high.good_spend_rate() / low.good_spend_rate();
    assert!(
        (0.8..1.25).contains(&ratio),
        "REMP should be flat: {} vs {}",
        low.good_spend_rate(),
        high.good_spend_rate()
    );
}

#[test]
fn sybilcontrol_cost_is_always_on() {
    // With NO attack, SybilControl still burns ~2 units/s per good ID,
    // while Ergo burns only on joins and occasional churn-driven purges.
    let sc = gnutella_run(SybilControl::default(), 0.0, 23);
    let ergo = gnutella_run(Ergo::new(ErgoConfig::default()), 0.0, 23);
    assert!(
        sc.good_spend_rate() > 100.0 * ergo.good_spend_rate(),
        "SybilControl {} vs Ergo {} at T=0",
        sc.good_spend_rate(),
        ergo.good_spend_rate()
    );
}

#[test]
fn no_attack_cost_scales_with_join_rate_not_system_size() {
    // Theorem 1's no-attack regime: A = O(J). Ethereum churns ~9x faster
    // than Gnutella at the same size; its no-attack cost should be higher,
    // but both should be in the tens-of-units/s range, far below system size.
    let gnutella = gnutella_run(Ergo::new(ErgoConfig::default()), 0.0, 29);
    let workload = networks::ethereum().generate(HORIZON, 29);
    let cfg = SimConfig { horizon: HORIZON, ..SimConfig::default() };
    let ethereum =
        Simulation::new(cfg, Ergo::new(ErgoConfig::default()), NullAdversary, workload).run();
    assert!(ethereum.good_spend_rate() > gnutella.good_spend_rate());
    assert!(gnutella.good_spend_rate() < 100.0, "{}", gnutella.good_spend_rate());
    assert!(ethereum.good_spend_rate() < 1_000.0, "{}", ethereum.good_spend_rate());
}

#[test]
fn refused_good_joins_only_occur_with_a_gate() {
    let plain = gnutella_run(Ergo::new(ErgoConfig::default()), 1_000.0, 31);
    assert_eq!(plain.good_joins_refused, 0);
    let gated = gnutella_run(sybil_defenses::ergo_sf(0.9, 5), 1_000.0, 31);
    assert!(gated.good_joins_refused > 0, "a 0.9-accuracy gate refuses ~10% of good");
    let total = gated.good_joins_admitted + gated.good_joins_refused;
    let refusal_rate = gated.good_joins_refused as f64 / total as f64;
    assert!((refusal_rate - 0.1).abs() < 0.05, "refusal rate {refusal_rate}");
}
