//! Property-based tests pinning the algorithmic cores against independent
//! reference implementations and algebraic identities.
//!
//! The offline build environment has no `proptest`, so cases are generated
//! by a hand-rolled loop over deterministic seeds: every case is a pure
//! function of its iteration index, which makes failures directly
//! reproducible (the panic message names the case number).

use bankrupting_sybil::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sybil_sim::Defense;

// ---------------------------------------------------------------------------
// Ergo batch pricing ≡ sequential pricing
// ---------------------------------------------------------------------------

/// A Sybil batch at one instant must admit exactly as many IDs, at exactly
/// the same total cost, as greedy one-at-a-time joins with the same budget —
/// the closed-form series is an optimization, not a semantic change.
#[test]
fn batch_join_equals_sequential_joins() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0x8a7c_0000 + case);
        let n_good = rng.gen_range(500u64..50_000);
        let budget = rng.gen_range(0.0f64..5_000.0);

        let now = Time(1.0);
        let mut batched = Ergo::new(ErgoConfig::default());
        batched.init(Time::ZERO, n_good, 0);
        let b = batched.bad_join_batch(now, Cost(budget), u64::MAX);

        let mut sequential = Ergo::new(ErgoConfig::default());
        sequential.init(Time::ZERO, n_good, 0);
        let mut remaining = budget;
        let mut admitted = 0u64;
        let mut spent = 0.0f64;
        loop {
            let s = sequential.bad_join_batch(now, Cost(remaining), 1);
            if s.admitted == 0 {
                break;
            }
            admitted += s.admitted;
            spent += s.spent.value();
            remaining -= s.spent.value();
            if !matches!(s.stop, sybil_sim::BatchStop::MaxAttempts) {
                break;
            }
        }
        assert_eq!(b.admitted, admitted, "case {case} (n_good={n_good}, budget={budget})");
        assert!(
            (b.spent.value() - spent).abs() < 1e-6,
            "case {case}: batch {} vs sequential {}",
            b.spent.value(),
            spent
        );
        assert_eq!(batched.n_bad(), sequential.n_bad(), "case {case}");
        assert_eq!(batched.quote(now), sequential.quote(now), "case {case}");
    }
}

/// The quote after any batch equals 1 + (IDs admitted in-window).
#[test]
fn quote_reflects_window_contents() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0x9b3d_0000 + case);
        let n_good = rng.gen_range(10_000u64..1_000_000);
        let budget = rng.gen_range(1.0f64..2_000.0);

        let now = Time(5.0);
        let mut e = Ergo::new(ErgoConfig::default());
        e.init(Time::ZERO, n_good, 0);
        assert_eq!(e.quote(now).value(), 1.0, "case {case}");
        let b = e.bad_join_batch(now, Cost(budget), u64::MAX);
        // All admissions happened at `now`, inside any positive window.
        assert_eq!(
            e.quote(now).value(),
            1.0 + b.admitted as f64,
            "case {case} (n_good={n_good}, budget={budget})"
        );
    }
}

// ---------------------------------------------------------------------------
// GoodJEst vs a brute-force reference implementation
// ---------------------------------------------------------------------------

/// Reference GoodJEst: literal sets and from-scratch symmetric differences.
struct ReferenceEstimator {
    start_set: std::collections::BTreeSet<u64>,
    current: std::collections::BTreeSet<u64>,
    t_start: f64,
    estimate: f64,
    next_id: u64,
}

impl ReferenceEstimator {
    fn new(initial: u64, init_duration: f64) -> Self {
        let set: std::collections::BTreeSet<u64> = (0..initial).collect();
        ReferenceEstimator {
            start_set: set.clone(),
            current: set,
            t_start: 0.0,
            estimate: initial as f64 / init_duration,
            next_id: initial,
        }
    }

    fn symdiff(&self) -> u64 {
        self.start_set.symmetric_difference(&self.current).count() as u64
    }

    fn maybe_roll(&mut self, now: f64) {
        if 12 * self.symdiff() >= 5 * self.current.len() as u64 && now > self.t_start {
            self.estimate = self.current.len() as f64 / (now - self.t_start);
            self.t_start = now;
            self.start_set = self.current.clone();
        }
    }

    fn join(&mut self, now: f64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.current.insert(id);
        self.maybe_roll(now);
        id
    }

    fn depart(&mut self, now: f64, id: u64) {
        self.current.remove(&id);
        self.maybe_roll(now);
    }
}

/// The O(1)-per-event GoodJEst agrees with a set-based reference on random
/// event sequences (estimates, interval starts, and sizes).
#[test]
fn goodjest_matches_brute_force() {
    use ergo_core::goodjest::GoodJEst;
    use ergo_core::params::GoodJEstConfig;

    for case in 0u64..48 {
        let mut rng = StdRng::seed_from_u64(0xc4f1_0000 + case);
        let initial = rng.gen_range(12u64..200);
        let n_ops = rng.gen_range(1usize..300);

        let mut fast = GoodJEst::new(GoodJEstConfig::default(), Time::ZERO, initial);
        let mut reference = ReferenceEstimator::new(initial, 1.0);
        // Track (id, join_time) of live IDs to drive departures.
        let mut live: Vec<(u64, f64)> = (0..initial).map(|i| (i, 0.0)).collect();
        let mut t = 0.0f64;
        for _ in 0..n_ops {
            let op = rng.gen_range(0u8..2);
            let step = rng.gen_range(1u64..50);
            t += step as f64 * 0.1;
            match op {
                0 => {
                    let id = reference.join(t);
                    fast.on_join(Time(t), 1);
                    live.push((id, t));
                }
                _ => {
                    if live.len() <= 1 {
                        continue;
                    }
                    // Deterministic pseudo-random victim.
                    let idx = (step as usize * 7919) % live.len();
                    let (id, joined_at) = live.swap_remove(idx);
                    let old = fast.classify_old(Time(joined_at));
                    fast.on_depart(Time(t), old, 1);
                    reference.depart(t, id);
                }
            }
            assert_eq!(fast.size(), reference.current.len() as u64, "case {case}");
            assert_eq!(fast.symdiff(), reference.symdiff(), "case {case}");
            assert!(
                (fast.estimate() - reference.estimate).abs() < 1e-9,
                "case {case}: estimate {} vs reference {}",
                fast.estimate(),
                reference.estimate
            );
            assert!(
                (fast.interval_start().as_secs() - reference.t_start).abs() < 1e-12,
                "case {case}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Engine conservation on random workloads
// ---------------------------------------------------------------------------

/// On arbitrary small workloads: determinism, budget conservation, and the
/// invariant hold.
#[test]
fn engine_conservation_on_random_workloads() {
    for case in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(0xe2a9_0000 + case);
        let n_init = rng.gen_range(200u64..800);
        let n_sessions = rng.gen_range(0usize..200);
        let t = rng.gen_range(0.0f64..2_000.0);

        let horizon = 120.0;
        let initial: Vec<Time> = (0..n_init).map(|_| Time(rng.gen_range(1.0..400.0))).collect();
        let sessions: Vec<Session> = (0..n_sessions)
            .map(|_| {
                let join = rng.gen_range(0.0..horizon);
                Session::new(Time(join), Time(join + rng.gen_range(0.1..300.0)))
            })
            .collect();
        let workload = Workload::new(initial, sessions);
        let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };
        let r1 = Simulation::new(
            cfg,
            Ergo::new(ErgoConfig::default()),
            BudgetJoiner::new(t),
            workload.clone(),
        )
        .run();
        let r2 =
            Simulation::new(cfg, Ergo::new(ErgoConfig::default()), BudgetJoiner::new(t), workload)
                .run();
        assert_eq!(&r1.ledger, &r2.ledger, "case {case}: nondeterministic ledger");
        assert!(r1.ledger.adversary_total().value() <= t * horizon + 1e-6, "case {case}");
        assert!(r1.max_bad_fraction < 1.0 / 6.0, "case {case}: fraction {}", r1.max_bad_fraction);
        // Good membership closes.
        let expected_good = n_init + r1.good_joins_admitted - r1.good_departures;
        assert_eq!(r1.final_members - r1.final_bad, expected_good, "case {case}");
    }
}

// ---------------------------------------------------------------------------
// DHT: clean-ring completeness over arbitrary membership sets
// ---------------------------------------------------------------------------

/// On a Sybil-free ring of arbitrary membership, greedy lookup reaches the
/// owner of every key.
#[test]
fn dht_greedy_is_complete_on_clean_rings() {
    use sybil_dht::{lookup_greedy, Ring};
    use sybil_sim::id::Id;

    for case in 0u64..32 {
        let mut rng = StdRng::seed_from_u64(0xd715_0000 + case);
        let n_ids = rng.gen_range(2usize..200);
        let ids: std::collections::BTreeSet<u64> =
            (0..n_ids).map(|_| rng.gen_range(0u64..1_000_000)).collect();
        let n_keys = rng.gen_range(1usize..20);
        let keys: Vec<u64> = (0..n_keys).map(|_| rng.gen()).collect();

        let ring = Ring::from_members(ids.iter().map(|&i| (Id(i), false)));
        let origin = ring.any_good().expect("nonempty");
        for key in keys {
            assert!(
                lookup_greedy(&ring, origin, key).is_success(),
                "case {case}: failed key {key} on ring of {}",
                ring.len()
            );
        }
    }
}
