//! Property-based tests pinning the algorithmic cores against independent
//! reference implementations and algebraic identities.

use bankrupting_sybil::prelude::*;
use proptest::prelude::*;
use sybil_sim::Defense;

// ---------------------------------------------------------------------------
// Ergo batch pricing ≡ sequential pricing
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A Sybil batch at one instant must admit exactly as many IDs, at
    /// exactly the same total cost, as greedy one-at-a-time joins with the
    /// same budget — the closed-form series is an optimization, not a
    /// semantic change.
    #[test]
    fn batch_join_equals_sequential_joins(
        n_good in 500u64..50_000,
        budget in 0.0f64..5_000.0,
    ) {
        let now = Time(1.0);
        let mut batched = Ergo::new(ErgoConfig::default());
        batched.init(Time::ZERO, n_good, 0);
        let b = batched.bad_join_batch(now, Cost(budget), u64::MAX);

        let mut sequential = Ergo::new(ErgoConfig::default());
        sequential.init(Time::ZERO, n_good, 0);
        let mut remaining = budget;
        let mut admitted = 0u64;
        let mut spent = 0.0f64;
        loop {
            let s = sequential.bad_join_batch(now, Cost(remaining), 1);
            if s.admitted == 0 {
                break;
            }
            admitted += s.admitted;
            spent += s.spent.value();
            remaining -= s.spent.value();
            if !matches!(s.stop, sybil_sim::BatchStop::MaxAttempts) {
                break;
            }
        }
        prop_assert_eq!(b.admitted, admitted);
        prop_assert!((b.spent.value() - spent).abs() < 1e-6,
            "batch {} vs sequential {}", b.spent.value(), spent);
        prop_assert_eq!(batched.n_bad(), sequential.n_bad());
        prop_assert_eq!(batched.quote(now), sequential.quote(now));
    }

    /// The quote after any batch equals 1 + (IDs admitted in-window).
    #[test]
    fn quote_reflects_window_contents(
        n_good in 10_000u64..1_000_000,
        budget in 1.0f64..2_000.0,
    ) {
        let now = Time(5.0);
        let mut e = Ergo::new(ErgoConfig::default());
        e.init(Time::ZERO, n_good, 0);
        let before = e.quote(now).value();
        prop_assert_eq!(before, 1.0);
        let b = e.bad_join_batch(now, Cost(budget), u64::MAX);
        // All admissions happened at `now`, inside any positive window.
        prop_assert_eq!(e.quote(now).value(), 1.0 + b.admitted as f64);
    }
}

// ---------------------------------------------------------------------------
// GoodJEst vs a brute-force reference implementation
// ---------------------------------------------------------------------------

/// Reference GoodJEst: literal sets and from-scratch symmetric differences.
struct ReferenceEstimator {
    start_set: std::collections::BTreeSet<u64>,
    current: std::collections::BTreeSet<u64>,
    t_start: f64,
    estimate: f64,
    next_id: u64,
}

impl ReferenceEstimator {
    fn new(initial: u64, init_duration: f64) -> Self {
        let set: std::collections::BTreeSet<u64> = (0..initial).collect();
        ReferenceEstimator {
            start_set: set.clone(),
            current: set,
            t_start: 0.0,
            estimate: initial as f64 / init_duration,
            next_id: initial,
        }
    }

    fn symdiff(&self) -> u64 {
        self.start_set.symmetric_difference(&self.current).count() as u64
    }

    fn maybe_roll(&mut self, now: f64) {
        if 12 * self.symdiff() >= 5 * self.current.len() as u64 && now > self.t_start {
            self.estimate = self.current.len() as f64 / (now - self.t_start);
            self.t_start = now;
            self.start_set = self.current.clone();
        }
    }

    fn join(&mut self, now: f64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.current.insert(id);
        self.maybe_roll(now);
        id
    }

    fn depart(&mut self, now: f64, id: u64) {
        self.current.remove(&id);
        self.maybe_roll(now);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The O(1)-per-event GoodJEst agrees with a set-based reference on
    /// random event sequences (estimates, interval starts, and sizes).
    #[test]
    fn goodjest_matches_brute_force(
        ops in proptest::collection::vec((0u8..2, 1u64..50), 1..300),
        initial in 12u64..200,
    ) {
        use ergo_core::goodjest::GoodJEst;
        use ergo_core::params::GoodJEstConfig;

        let mut fast = GoodJEst::new(GoodJEstConfig::default(), Time::ZERO, initial);
        let mut reference = ReferenceEstimator::new(initial, 1.0);
        // Track (id, join_time) of live IDs to drive departures.
        let mut live: Vec<(u64, f64)> = (0..initial).map(|i| (i, 0.0)).collect();
        let mut t = 0.0f64;
        for (op, step) in ops {
            t += step as f64 * 0.1;
            match op {
                0 => {
                    let id = reference.join(t);
                    fast.on_join(Time(t), 1);
                    live.push((id, t));
                }
                _ => {
                    if live.len() <= 1 { continue; }
                    // Deterministic pseudo-random victim.
                    let idx = (step as usize * 7919) % live.len();
                    let (id, joined_at) = live.swap_remove(idx);
                    let old = fast.classify_old(Time(joined_at));
                    fast.on_depart(Time(t), old, 1);
                    reference.depart(t, id);
                }
            }
            prop_assert_eq!(fast.size(), reference.current.len() as u64);
            prop_assert_eq!(fast.symdiff(), reference.symdiff());
            prop_assert!((fast.estimate() - reference.estimate).abs() < 1e-9,
                "estimate {} vs reference {}", fast.estimate(), reference.estimate);
            prop_assert!((fast.interval_start().as_secs() - reference.t_start).abs() < 1e-12);
        }
    }
}

// ---------------------------------------------------------------------------
// Engine conservation on random workloads
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On arbitrary small workloads: determinism, budget conservation, and
    /// the invariant hold.
    #[test]
    fn engine_conservation_on_random_workloads(
        n_init in 200u64..800,
        n_sessions in 0usize..200,
        t in 0.0f64..2_000.0,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let horizon = 120.0;
        let initial: Vec<Time> =
            (0..n_init).map(|_| Time(rng.gen_range(1.0..400.0))).collect();
        let sessions: Vec<Session> = (0..n_sessions)
            .map(|_| {
                let join = rng.gen_range(0.0..horizon);
                Session::new(Time(join), Time(join + rng.gen_range(0.1..300.0)))
            })
            .collect();
        let workload = Workload::new(initial, sessions);
        let cfg = SimConfig { horizon: Time(horizon), adv_rate: t, ..SimConfig::default() };
        let r1 = Simulation::new(
            cfg, Ergo::new(ErgoConfig::default()), BudgetJoiner::new(t), workload.clone(),
        ).run();
        let r2 = Simulation::new(
            cfg, Ergo::new(ErgoConfig::default()), BudgetJoiner::new(t), workload,
        ).run();
        prop_assert_eq!(&r1.ledger, &r2.ledger);
        prop_assert!(r1.ledger.adversary_total().value() <= t * horizon + 1e-6);
        prop_assert!(r1.max_bad_fraction < 1.0 / 6.0, "fraction {}", r1.max_bad_fraction);
        // Good membership closes.
        let expected_good = n_init + r1.good_joins_admitted - r1.good_departures;
        prop_assert_eq!(r1.final_members - r1.final_bad, expected_good);
    }
}

// ---------------------------------------------------------------------------
// DHT: clean-ring completeness over arbitrary membership sets
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On a Sybil-free ring of arbitrary membership, greedy lookup reaches
    /// the owner of every key.
    #[test]
    fn dht_greedy_is_complete_on_clean_rings(
        ids in proptest::collection::btree_set(0u64..1_000_000, 2..200),
        keys in proptest::collection::vec(proptest::num::u64::ANY, 1..20),
    ) {
        use sybil_dht::{lookup_greedy, Ring};
        use sybil_sim::id::Id;
        let ring = Ring::from_members(ids.iter().map(|&i| (Id(i), false)));
        let origin = ring.any_good().expect("nonempty");
        for key in keys {
            prop_assert!(
                lookup_greedy(&ring, origin, key).is_success(),
                "failed key {key} on ring of {}", ring.len()
            );
        }
    }
}
