//! Integration tests for the paper's epoch/interval/iteration translation
//! lemmas (Figure 7): Lemma 1 — a GoodJEst interval intersects at most two
//! epochs; Lemma 11 — an Ergo iteration intersects at most two intervals.
//!
//! These hold when the bad fraction stays below 1/6, which a no-adversary
//! replay satisfies trivially and an attacked replay satisfies by Lemma 9.

use bankrupting_sybil::prelude::*;
use sybil_churn::detect_epochs;
use sybil_sim::Time as T;

/// Runs Ergo over a workload and returns (interval spans, purge times).
fn replay(workload: Workload, horizon: T, t: f64) -> (Vec<(f64, f64)>, Vec<f64>) {
    let cfg = SimConfig { horizon, adv_rate: t, ..SimConfig::default() };
    let report =
        Simulation::new(cfg, Ergo::new(ErgoConfig::default()), BudgetJoiner::new(t), workload)
            .run();
    assert!(report.max_bad_fraction < 1.0 / 6.0, "invariant precondition violated");
    let intervals: Vec<(f64, f64)> =
        report.estimates.iter().map(|e| (e.start.as_secs(), e.end.as_secs())).collect();
    let purges: Vec<f64> = report.purge_times.iter().map(|p| p.as_secs()).collect();
    (intervals, purges)
}

/// Counts spans from `spans` that strictly overlap `(lo, hi)`.
fn overlapping(spans: &[(f64, f64)], lo: f64, hi: f64) -> usize {
    spans.iter().filter(|&&(s, e)| s < hi && e > lo).count()
}

/// Closes the open tail of a span list at `horizon` (the in-progress
/// epoch/interval also counts toward the lemmas).
fn with_tail(mut spans: Vec<(f64, f64)>, horizon: f64) -> Vec<(f64, f64)> {
    let last_end = spans.last().map_or(0.0, |&(_, e)| e);
    if last_end < horizon {
        spans.push((last_end, horizon));
    }
    spans
}

#[test]
fn lemma1_interval_intersects_at_most_two_epochs() {
    for seed in [1u64, 2, 3] {
        for (alpha, beta) in [(1.0, 1.0), (2.0, 1.0), (2.0, 3.0)] {
            let gen = AbcTraceGenerator { n0: 800, rho0: 4.0, alpha, beta, epochs: 10 };
            let workload = gen.generate(seed);
            let horizon = workload.sessions.last().map_or(T(100.0), |s| s.join + 1.0);
            let epochs: Vec<(f64, f64)> = detect_epochs(&workload, horizon, (1, 2))
                .iter()
                .map(|e| (e.start.as_secs(), e.end.as_secs()))
                .collect();
            let epochs = with_tail(epochs, horizon.as_secs());
            let (intervals, _) = replay(workload, horizon, 0.0);
            assert!(!intervals.is_empty(), "no intervals completed (seed {seed})");
            for &(lo, hi) in &intervals {
                let n = overlapping(&epochs, lo, hi);
                assert!(
                    n <= 2,
                    "interval ({lo:.1}, {hi:.1}) intersects {n} epochs \
                     (alpha={alpha}, beta={beta}, seed={seed})"
                );
            }
        }
    }
}

#[test]
fn lemma11_iteration_intersects_at_most_two_intervals() {
    // Under attack, purges delimit iterations frequently; intervals are the
    // estimator's. Gnutella churn with a moderate adversary.
    let horizon = T(3_000.0);
    for seed in [5u64, 6] {
        let workload = networks::gnutella().generate(horizon, seed);
        let (intervals, purges) = replay(workload, horizon, 5_000.0);
        assert!(purges.len() > 5, "too few iterations to test (seed {seed})");
        let intervals = with_tail(intervals, horizon.as_secs());
        let mut prev = 0.0;
        for &p in &purges {
            let n = overlapping(&intervals, prev, p);
            assert!(n <= 2, "iteration ({prev:.1}, {p:.1}) intersects {n} intervals (seed {seed})");
            prev = p;
        }
    }
}

#[test]
fn section13_3_alternative_constants_preserve_lemma1() {
    // Section 13.3: with the interval threshold raised to 1/2, epochs must
    // be redefined at 3/5 for Lemma 1's proof to carry ("|S(t2)△S(t0)| ≥
    // (3/5)(5/6) = 1/2 ends an epoch under this new definition").
    use ergo_core::params::Ratio;
    for seed in [11u64, 12] {
        let gen = AbcTraceGenerator { n0: 800, rho0: 4.0, alpha: 1.5, beta: 1.0, epochs: 10 };
        let workload = gen.generate(seed);
        let horizon = workload.sessions.last().map_or(T(100.0), |s| s.join + 1.0);
        // Epochs at the 3/5 threshold.
        let epochs: Vec<(f64, f64)> = detect_epochs(&workload, horizon, (3, 5))
            .iter()
            .map(|e| (e.start.as_secs(), e.end.as_secs()))
            .collect();
        let epochs = with_tail(epochs, horizon.as_secs());
        // Ergo with the 1/2 interval threshold.
        let mut cfg = ErgoConfig::default();
        cfg.estimator.interval_threshold = Ratio::new(1, 2);
        let sim_cfg = SimConfig { horizon, ..SimConfig::default() };
        let report = Simulation::new(sim_cfg, Ergo::new(cfg), NullAdversary, workload).run();
        let intervals: Vec<(f64, f64)> =
            report.estimates.iter().map(|e| (e.start.as_secs(), e.end.as_secs())).collect();
        assert!(!intervals.is_empty(), "no intervals at the 1/2 threshold (seed {seed})");
        for &(lo, hi) in &intervals {
            let n = overlapping(&epochs, lo, hi);
            assert!(n <= 2, "interval ({lo:.1}, {hi:.1}) intersects {n} 3/5-epochs (seed {seed})");
        }
    }
}

#[test]
fn lemma2_interval_size_cannot_collapse() {
    // Lemma 2: |S(t')| ≥ 7/10 |S(t)| at interval ends — membership cannot
    // shrink by more than ~30% within one estimator interval. We check the
    // looser engine-observable consequence: successive interval estimates
    // stay within bounded ratios on a stationary workload.
    let horizon = T(20_000.0);
    let workload = networks::ethereum().generate(horizon, 9);
    let cfg = SimConfig { horizon, ..SimConfig::default() };
    let report =
        Simulation::new(cfg, Ergo::new(ErgoConfig::default()), NullAdversary, workload).run();
    let estimates: Vec<f64> = report.estimates.iter().map(|e| e.estimate).collect();
    assert!(estimates.len() >= 3);
    for w in estimates.windows(2) {
        let ratio = w[1] / w[0];
        assert!(
            (0.05..20.0).contains(&ratio),
            "estimate jumped by {ratio} between consecutive intervals"
        );
    }
}
